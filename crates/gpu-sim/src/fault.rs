//! Deterministic, seeded fault injection.
//!
//! Production serving stacks treat silent memory corruption as a
//! first-class failure mode; this module gives the simulator the same
//! vocabulary. A [`FaultPlan`] describes *where* faults may strike
//! (per-site rates plus site filters) and a [`FaultInjector`] turns the
//! plan into concrete, reproducible decisions:
//!
//! * **Global-load bit flips** — one bit of a loaded word inverted
//!   ([`FaultInjector::bitflip`]), modelling an uncorrected DRAM error.
//! * **`cp.async` commit faults** — a committed `LDGSTS.128` group is
//!   corrupted or dropped entirely ([`FaultInjector::commit_fault`]),
//!   modelling a lost or torn asynchronous copy.
//! * **FP16 poison** — a gathered value replaced by NaN/±Inf
//!   ([`FaultInjector::poison_value`]), modelling in-register corruption.
//!
//! Every decision is a *pure hash* of `(seed, site, key)` — no mutable
//! RNG state — so the same seed yields the same fault sites regardless
//! of host thread schedule or job count, and a retry can re-draw
//! deterministically by mixing an attempt index into the key. Kernels
//! thread the injector as `Option<&FaultInjector>`: `None` is the golden
//! path and is bit-identical to code built before this module existed.
//!
//! Injected events are recorded in [`Counters::faults_injected`]; the
//! detection/recovery counts ([`Counters::faults_detected`] and
//! friends) are written by the integrity layer that consumes them (see
//! `spinfer_core::spmm::SpinferSpmm::run_checked`). All four fields are
//! excluded from [`Counters::digest`] — injection is off the golden
//! path by construction.

use crate::counters::Counters;
use crate::fp16::Half;

/// Which injection sites a plan may strike; filters compose with the
/// per-site rates (a disabled site never fires regardless of rate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSites {
    /// Bit flips on global-memory loads (`LDGSTS` / `LDG`).
    pub global_loads: bool,
    /// Corrupted or dropped `cp.async` commit groups.
    pub commits: bool,
    /// FP16 NaN/Inf poison on gathered values.
    pub values: bool,
}

impl Default for FaultSites {
    fn default() -> Self {
        FaultSites {
            global_loads: true,
            commits: true,
            values: true,
        }
    }
}

/// A seeded fault schedule. [`FaultPlan::default`] has every rate at
/// zero: an injector built from it never fires, and results are
/// bit-identical to running with no injector at all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Root seed; the only source of randomness.
    pub seed: u64,
    /// Probability that a global load's word gets one bit flipped.
    pub global_bitflip_rate: f64,
    /// Probability that a commit group lands corrupted (one byte flipped
    /// somewhere in the copied payload).
    pub commit_corrupt_rate: f64,
    /// Probability that a commit group is dropped (payload never lands).
    pub commit_drop_rate: f64,
    /// Probability that a gathered FP16 value is poisoned to NaN/±Inf.
    pub fp16_poison_rate: f64,
    /// Site filter; all sites enabled by default.
    pub sites: FaultSites,
    /// Restrict injection to one GroupTile index (tests pin a blast
    /// radius with this); `None` targets everything.
    pub only_gtile: Option<usize>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            global_bitflip_rate: 0.0,
            commit_corrupt_rate: 0.0,
            commit_drop_rate: 0.0,
            fp16_poison_rate: 0.0,
            sites: FaultSites::default(),
            only_gtile: None,
        }
    }
}

impl FaultPlan {
    /// A plan with uniform rate `r` on every site — the quick knob for
    /// smoke tests and CLI runs.
    pub fn uniform(seed: u64, r: f64) -> Self {
        FaultPlan {
            seed,
            global_bitflip_rate: r,
            commit_corrupt_rate: r,
            commit_drop_rate: r,
            fp16_poison_rate: r,
            ..FaultPlan::default()
        }
    }

    /// True when at least one enabled site has a non-zero rate.
    pub fn armed(&self) -> bool {
        (self.sites.global_loads && self.global_bitflip_rate > 0.0)
            || (self.sites.commits && (self.commit_corrupt_rate + self.commit_drop_rate) > 0.0)
            || (self.sites.values && self.fp16_poison_rate > 0.0)
    }
}

/// Outcome of a `cp.async` commit under injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitFault {
    /// The group landed intact.
    None,
    /// The group landed with `flip_byte` of its payload corrupted
    /// (byte index modulo the payload length; bit within the byte).
    Corrupt {
        /// Pseudo-random byte selector (caller reduces modulo length).
        byte_sel: u64,
        /// Bit 0..8 within the selected byte.
        bit: u32,
    },
    /// The group never landed; the destination buffer holds stale data.
    Dropped,
}

// Site salts keep the three decision streams independent even when
// callers reuse the same key space (e.g. an address).
const SALT_GLOBAL: u64 = 0x9e37_79b9_7f4a_7c15;
const SALT_COMMIT: u64 = 0xbf58_476d_1ce4_e5b9;
const SALT_POISON: u64 = 0x94d0_49bb_1331_11eb;
const SALT_AUX: u64 = 0xd6e8_feb8_6659_fd93;

/// `splitmix64` finalizer: the stateless hash behind every decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pure site-keyed probability draw: does an event with probability
/// `rate` fire for `(seed, site_salt, key)`? This is the one decision
/// function behind [`FaultInjector`] and the fleet-level
/// `ClusterFaultPlan` in `spinfer-llm`: every fault plan in the
/// workspace keys the same splitmix64 scheme, so decisions are
/// reproducible across host thread schedules and job counts.
pub fn site_fires(seed: u64, rate: f64, salt: u64, key: u64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    let h = mix(seed ^ salt.wrapping_mul(key | 1) ^ key.rotate_left(17));
    ((h >> 11) as f64) < rate * (1u64 << 53) as f64
}

/// Pure auxiliary draw companion to [`site_fires`]: *which* bit, byte,
/// replica, or jitter quantum a firing decision lands on.
pub fn site_aux(seed: u64, salt: u64, key: u64) -> u64 {
    mix(seed ^ SALT_AUX ^ salt.wrapping_add(key.rotate_left(31)))
}

/// [`site_aux`] mapped uniformly into `[0, 1)` (53-bit mantissa draw),
/// for deterministic jitter factors.
pub fn site_u01(seed: u64, salt: u64, key: u64) -> f64 {
    (site_aux(seed, salt, key) >> 11) as f64 / (1u64 << 53) as f64
}

/// Stateless fault oracle over a [`FaultPlan`].
#[derive(Clone, Copy, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps a plan; the injector itself is immutable and `Copy`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether injection may strike GroupTile `gt` under the plan's
    /// tile filter.
    pub fn gtile_enabled(&self, gt: usize) -> bool {
        self.plan.only_gtile.is_none_or(|only| only == gt)
    }

    /// A derived injector whose decisions are independent of this one's
    /// (same rates, different draw stream). Retry loops reseed with the
    /// attempt index so a re-load of the same addresses re-draws fresh
    /// fault sites instead of deterministically re-hitting the old ones.
    pub fn reseeded(&self, salt: u64) -> FaultInjector {
        FaultInjector::new(FaultPlan {
            seed: mix(self.plan.seed ^ salt.rotate_left(13).wrapping_add(salt)),
            ..self.plan
        })
    }

    /// Pure decision: does an event with probability `rate` fire for
    /// `(site_salt, key)`? Uses the top 53 bits of the hash as a
    /// uniform draw in `[0, 1)`. Delegates to the shared [`site_fires`]
    /// bit-identically.
    fn fires(&self, rate: f64, salt: u64, key: u64) -> bool {
        site_fires(self.plan.seed, rate, salt, key)
    }

    /// Auxiliary draw for *which* bit/byte/value a firing fault hits.
    fn aux(&self, salt: u64, key: u64) -> u64 {
        site_aux(self.plan.seed, salt, key)
    }

    /// Global-load site: `Some(bit)` when the word identified by `key`
    /// (typically its virtual address) gets bit `bit` (in `0..width_bits`)
    /// flipped. Records one injected fault.
    pub fn bitflip(&self, counters: &mut Counters, key: u64, width_bits: u32) -> Option<u32> {
        if !self.plan.sites.global_loads {
            return None;
        }
        if !self.fires(self.plan.global_bitflip_rate, SALT_GLOBAL, key) {
            return None;
        }
        counters.faults_injected += 1;
        Some((self.aux(SALT_GLOBAL, key) % u64::from(width_bits)) as u32)
    }

    /// Commit site: what happens to the `cp.async` group identified by
    /// `key`. Records one injected fault for any non-`None` outcome.
    pub fn commit_fault(&self, counters: &mut Counters, key: u64) -> CommitFault {
        if !self.plan.sites.commits {
            return CommitFault::None;
        }
        if self.fires(self.plan.commit_drop_rate, SALT_COMMIT, key) {
            counters.faults_injected += 1;
            return CommitFault::Dropped;
        }
        if self.fires(self.plan.commit_corrupt_rate, SALT_COMMIT ^ SALT_AUX, key) {
            counters.faults_injected += 1;
            let a = self.aux(SALT_COMMIT, key);
            return CommitFault::Corrupt {
                byte_sel: a >> 3,
                bit: (a & 7) as u32,
            };
        }
        CommitFault::None
    }

    /// Value site: `Some(poison)` when the FP16 value identified by
    /// `key` is replaced by NaN, `+Inf`, or `-Inf`. Records one
    /// injected fault.
    pub fn poison_value(&self, counters: &mut Counters, key: u64) -> Option<Half> {
        if !self.plan.sites.values {
            return None;
        }
        if !self.fires(self.plan.fp16_poison_rate, SALT_POISON, key) {
            return None;
        }
        counters.faults_injected += 1;
        Some(match self.aux(SALT_POISON, key) % 3 {
            0 => Half::NAN,
            1 => Half::INFINITY,
            _ => Half::NEG_INFINITY,
        })
    }

    /// Like [`FaultInjector::poison_value`], but also picks *which* of
    /// `n_sites` candidate values (e.g. active lanes of a gather) the
    /// poison lands on. `None` when the site doesn't fire or `n_sites`
    /// is zero.
    pub fn poison_site(
        &self,
        counters: &mut Counters,
        key: u64,
        n_sites: u32,
    ) -> Option<(u32, Half)> {
        if n_sites == 0 {
            return None;
        }
        let poison = self.poison_value(counters, key)?;
        let site = (self.aux(SALT_POISON ^ SALT_AUX, key) % u64::from(n_sites)) as u32;
        Some((site, poison))
    }
}

/// Flips bit `bit` of a 64-bit word.
pub fn flip_bit_u64(word: u64, bit: u32) -> u64 {
    word ^ (1u64 << (bit % 64))
}

/// Flips bit `bit` of a 16-bit word (an FP16 payload).
pub fn flip_bit_u16(word: u16, bit: u32) -> u16 {
    word ^ (1u16 << (bit % 16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::default());
        let mut c = Counters::new();
        for key in 0..4096u64 {
            assert_eq!(inj.bitflip(&mut c, key, 64), None);
            assert_eq!(inj.commit_fault(&mut c, key), CommitFault::None);
            assert_eq!(inj.poison_value(&mut c, key), None);
        }
        assert_eq!(c.faults_injected, 0);
        assert!(!FaultPlan::default().armed());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(FaultPlan::uniform(7, 0.05));
        let b = FaultInjector::new(FaultPlan::uniform(7, 0.05));
        let c = FaultInjector::new(FaultPlan::uniform(8, 0.05));
        let mut ca = Counters::new();
        let mut cb = Counters::new();
        let mut cc = Counters::new();
        let draws_a: Vec<_> = (0..2048).map(|k| a.bitflip(&mut ca, k, 64)).collect();
        let draws_b: Vec<_> = (0..2048).map(|k| b.bitflip(&mut cb, k, 64)).collect();
        let draws_c: Vec<_> = (0..2048).map(|k| c.bitflip(&mut cc, k, 64)).collect();
        assert_eq!(draws_a, draws_b, "same seed, same sites");
        assert_ne!(draws_a, draws_c, "different seed, different sites");
        assert_eq!(ca.faults_injected, cb.faults_injected);
        assert!(ca.faults_injected > 0, "5% over 2048 keys must fire");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let inj = FaultInjector::new(FaultPlan::uniform(42, 0.10));
        let mut c = Counters::new();
        let fired = (0..20_000u64)
            .filter(|&k| inj.bitflip(&mut c, k, 64).is_some())
            .count();
        let rate = fired as f64 / 20_000.0;
        assert!((rate - 0.10).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn site_filters_gate_each_site() {
        let mut plan = FaultPlan::uniform(3, 1.0);
        plan.sites = FaultSites {
            global_loads: false,
            commits: false,
            values: false,
        };
        let inj = FaultInjector::new(plan);
        let mut c = Counters::new();
        assert_eq!(inj.bitflip(&mut c, 1, 64), None);
        assert_eq!(inj.commit_fault(&mut c, 1), CommitFault::None);
        assert_eq!(inj.poison_value(&mut c, 1), None);
        assert!(!plan.armed());
    }

    #[test]
    fn gtile_filter() {
        let plan = FaultPlan {
            only_gtile: Some(3),
            ..FaultPlan::uniform(1, 1.0)
        };
        let inj = FaultInjector::new(plan);
        assert!(inj.gtile_enabled(3));
        assert!(!inj.gtile_enabled(2));
        assert!(FaultInjector::new(FaultPlan::uniform(1, 1.0)).gtile_enabled(2));
    }

    #[test]
    fn poison_values_are_nonfinite() {
        let inj = FaultInjector::new(FaultPlan::uniform(11, 1.0));
        let mut c = Counters::new();
        let mut kinds = [false; 3];
        for k in 0..64 {
            let p = inj.poison_value(&mut c, k).expect("rate 1.0 always fires");
            assert!(p.is_nan() || p.is_infinite());
            kinds[if p.is_nan() {
                0
            } else if p == Half::INFINITY {
                1
            } else {
                2
            }] = true;
        }
        assert!(kinds.iter().all(|&k| k), "all three poison kinds occur");
        assert_eq!(c.faults_injected, 64);
    }

    #[test]
    fn reseeded_injector_draws_an_independent_stream() {
        let base = FaultInjector::new(FaultPlan::uniform(9, 0.5));
        let retry = base.reseeded(1);
        let mut cb = Counters::new();
        let mut cr = Counters::new();
        let a: Vec<_> = (0..512).map(|k| base.bitflip(&mut cb, k, 64)).collect();
        let b: Vec<_> = (0..512).map(|k| retry.bitflip(&mut cr, k, 64)).collect();
        assert_ne!(a, b, "reseeding must change the decision stream");
        // Deterministic: the same salt derives the same stream again.
        let retry2 = base.reseeded(1);
        let mut c2 = Counters::new();
        let b2: Vec<_> = (0..512).map(|k| retry2.bitflip(&mut c2, k, 64)).collect();
        assert_eq!(b, b2);
    }

    #[test]
    fn shared_site_helpers_match_injector_decisions() {
        // FaultInjector delegates to the public site_* functions; the
        // fleet-level ClusterFaultPlan builds on the same scheme, so the
        // delegation must stay bit-identical.
        let plan = FaultPlan::uniform(21, 0.07);
        let inj = FaultInjector::new(plan);
        let mut c = Counters::new();
        for key in 0..4096u64 {
            assert_eq!(
                inj.bitflip(&mut c, key, 64).is_some(),
                site_fires(plan.seed, plan.global_bitflip_rate, SALT_GLOBAL, key)
            );
        }
        for key in 0..1024u64 {
            let u = site_u01(21, SALT_GLOBAL, key);
            assert!((0.0..1.0).contains(&u), "u01 out of range: {u}");
            assert_eq!(u, site_u01(21, SALT_GLOBAL, key), "u01 must be pure");
        }
    }

    #[test]
    fn bit_flip_helpers() {
        assert_eq!(flip_bit_u64(0, 5), 32);
        assert_eq!(flip_bit_u64(u64::MAX, 63), u64::MAX ^ (1 << 63));
        assert_eq!(flip_bit_u16(0, 15), 0x8000);
        // Double flip restores.
        assert_eq!(flip_bit_u16(flip_bit_u16(0x1234, 7), 7), 0x1234);
    }
}
