//! # Host-side parallel execution engine
//!
//! The simulator is a pure host program: every kernel "launch" is a
//! deterministic function of its inputs that produces numerical output
//! plus a [`Counters`] record. That makes block-level fan-out across
//! host cores safe *provided* the parallel decomposition is exact:
//!
//! * **Counters** — every field of [`Counters`] is a `u64` event count
//!   and [`Counters::merge`] is field-wise addition, which is
//!   commutative and associative. Sharding counts per worker and
//!   merging after the barrier therefore yields bit-identical totals
//!   regardless of schedule.
//! * **Numerics** — callers must partition floating-point work so each
//!   worker owns a disjoint output region (e.g. disjoint block rows of
//!   a workspace). Disjoint writes are plain copies; no cross-worker
//!   reduction order exists, so results are bit-identical to serial.
//!
//! Host parallelism here changes *wall-clock* time of the simulation
//! only. Simulated kernel time is a pure function of the merged
//! counters and launch geometry (see `docs/TIMING_MODEL.md`), so every
//! reported figure is identical at any job count.
//!
//! Job count resolution: [`set_jobs`] override → `SPINFER_JOBS`
//! environment variable → [`std::thread::available_parallelism`].

use crate::counters::Counters;
use crate::trace::{pids, TraceEvent, TraceSink};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Process-wide job override set by [`set_jobs`]; 0 means "no override".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Optional trace sink for pool-call/task-lifetime spans, plus the
    /// ordinal clock (next free tick). Thread-local on purpose: only
    /// pool calls *coordinated by the attaching thread* are recorded, so
    /// concurrent tests can't pollute each other's traces and nested
    /// pool calls issued from worker threads stay silent.
    static TASK_TRACE: std::cell::RefCell<(Option<Arc<TraceSink>>, u64)> =
        const { std::cell::RefCell::new((None, 0)) };
}

/// Attaches (or with `None` detaches) a [`TraceSink`] that records this
/// thread's worker-pool call and task-lifetime spans.
///
/// The pool has no simulated clock, so its spans use a deterministic
/// *ordinal* clock instead of wall-clock: each [`par_map`]-family call
/// claims a contiguous tick range and task `i` occupies `[t0+i, t0+i+1)`.
/// Spans are recorded by the coordinating thread *after* the pool joins,
/// in item-index order, so the stream is byte-identical at any job count
/// — wall-clock timing never leaks into a trace. Attaching resets the
/// ordinal clock, so a given program phase always lands at the same
/// ticks.
pub fn set_task_trace(sink: Option<Arc<TraceSink>>) {
    TASK_TRACE.with(|slot| *slot.borrow_mut() = (sink, 0));
}

/// Records one pool call (n tasks) into the attached sink, if any.
fn record_pool_call(label: &'static str, n: usize) {
    let sink = TASK_TRACE.with(|slot| {
        let mut slot = slot.borrow_mut();
        slot.0.clone().map(|sink| {
            let t0 = slot.1;
            slot.1 += n as u64 + 1;
            (sink, t0)
        })
    });
    let Some((sink, t0)) = sink else { return };
    sink.name_track((pids::HOST_POOL, 0), "host pool", "pool calls (ordinal)");
    sink.name_track((pids::HOST_POOL, 1), "host pool", "tasks (ordinal)");
    let mut evs = Vec::with_capacity(n + 1);
    let mut call = TraceEvent::span((pids::HOST_POOL, 0), label, "host", t0 as f64, n as f64);
    call.arg = Some(("tasks", n as f64));
    evs.push(call);
    for i in 0..n {
        evs.push(TraceEvent::span(
            (pids::HOST_POOL, 1),
            "task",
            "host",
            (t0 + i as u64) as f64,
            1.0,
        ));
    }
    sink.extend(evs);
}

/// Forces the worker count for subsequent parallel calls.
///
/// `set_jobs(1)` forces serial execution; `set_jobs(0)` clears the
/// override, restoring `SPINFER_JOBS` / hardware detection. The
/// override is process-global: tests that flip it must keep the
/// flip-and-restore inside a single `#[test]` body (the default test
/// harness runs tests on concurrent threads).
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Resolves the worker count: [`set_jobs`] override, else the
/// `SPINFER_JOBS` environment variable, else the number of available
/// hardware threads (at least 1).
pub fn num_jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(s) = std::env::var("SPINFER_JOBS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on a scoped worker pool, returning results in
/// input order.
///
/// Workers claim items dynamically (an atomic cursor over the shared
/// list), so uneven per-item cost load-balances; results are stitched
/// back by item index, so the output is identical to
/// `items.into_iter().map(f).collect()` for any job count.
pub fn par_map<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    par_map_with(items, || (), |(), item| f(item))
}

/// [`par_map`] that records no pool-call trace span.
///
/// For host-side *setup* work (matrix generation, format encode,
/// checksum sweeps) that may run near an attached task trace: kernel
/// traces pin pool-call/task spans as part of their job-count-invariance
/// contract, and setup fan-outs — whose item counts depend on data
/// geometry, not launch geometry — must not perturb them.
pub fn par_map_untraced<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    par_map_inner(items, || (), |(), item| f(item))
}

/// [`par_map`] with per-worker scratch state.
///
/// Each worker calls `init` once and threads the resulting state
/// through every item it processes — the hook for reusable scratch
/// buffers and per-worker [`CounterShard`]s. The serial path (one job
/// or ≤1 item) uses a single state, which is indistinguishable
/// because worker state must never affect results (only counters
/// recorded into shards that are merged commutatively).
pub fn par_map_with<I, S, R, F, N>(items: Vec<I>, init: N, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    N: Fn() -> S + Sync,
    F: Fn(&mut S, I) -> R + Sync,
{
    record_pool_call("par_map", items.len());
    par_map_inner(items, init, f)
}

/// Shared pool body of [`par_map_with`] (traced) and
/// [`par_map_untraced`]: dynamic claiming, order-restoring, serial
/// short-circuit at one job.
fn par_map_inner<I, S, R, F, N>(items: Vec<I>, init: N, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    N: Fn() -> S + Sync,
    F: Fn(&mut S, I) -> R + Sync,
{
    let jobs = num_jobs().min(items.len().max(1));
    if jobs <= 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }

    let n = items.len();
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut collected: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Hold the queue lock only for the claim, not
                        // for the (arbitrarily long) item execution.
                        let next = queue.lock().unwrap().next();
                        match next {
                            Some((idx, item)) => local.push((idx, f(&mut state, item))),
                            None => break local,
                        }
                    }
                })
            })
            .collect();
        let mut all = Vec::with_capacity(n);
        for h in handles {
            match h.join() {
                Ok(local) => all.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });

    collected.sort_unstable_by_key(|(idx, _)| *idx);
    debug_assert_eq!(collected.len(), n);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map`] with per-item panic isolation.
///
/// Each item runs under `catch_unwind`: a panicking item yields
/// `Err(message)` in its slot while every other item still completes —
/// one poisoned input cannot take the whole pool down. Output order and
/// values are otherwise identical to [`par_map`]. The standard panic
/// hook is suppressed for the duration of the call so isolated panics
/// don't spray backtraces over the caller's output; because the hook is
/// process-global, concurrent *uncaught* panics in other threads would
/// also be quieted for that window — acceptable for the sweep harness,
/// which owns the process.
pub fn par_map_catch<I, R, F>(items: Vec<I>, f: F) -> Vec<Result<R, String>>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync + std::panic::RefUnwindSafe,
{
    let quiet = QuietPanics::install();
    let out = par_map(items, |item| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)))
            .map_err(|payload| panic_message(payload.as_ref()))
    });
    drop(quiet);
    out
}

/// Extracts the human-readable message from a panic payload
/// (`&str` / `String` payloads; anything else gets a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// RAII guard that silences the global panic hook, restoring the
/// default on drop. Nested installs refcount so concurrent
/// [`par_map_catch`] calls compose.
struct QuietPanics;

static QUIET_DEPTH: AtomicUsize = AtomicUsize::new(0);

impl QuietPanics {
    fn install() -> Self {
        if QUIET_DEPTH.fetch_add(1, Ordering::SeqCst) == 0 {
            std::panic::set_hook(Box::new(|_| {}));
        }
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if QUIET_DEPTH.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _ = std::panic::take_hook();
        }
    }
}

/// Partitions `0..len` into contiguous ranges and maps `f` over them on
/// the worker pool, returning per-range results in range order.
///
/// The `par_chunks` counterpart to [`par_map`]: several ranges are cut
/// per worker so uneven per-range cost load-balances. Chunk geometry
/// depends only on `len` and the job count, never on the data; callers
/// that compute each output element entirely within one range (e.g.
/// row bands of a matrix product) get bit-identical results at any job
/// count because no floating-point reduction crosses a range boundary.
pub fn par_chunks<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    par_map(chunk_ranges(len, num_jobs()), f)
}

/// Cuts `0..len` into contiguous ranges, about four per job. Public so
/// two-pass encoders can materialize one banding and reuse it across
/// both passes (count, then fill disjoint output slices cut at the same
/// band boundaries).
pub fn chunk_ranges(len: usize, jobs: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunk = len.div_ceil(jobs.max(1) * 4).max(1);
    (0..len.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(len))
        .collect()
}

/// Per-worker event-count shard.
///
/// The pattern for parallelising an instrumented kernel: give each
/// worker its own shard via [`par_map_with`], record into
/// [`CounterShard::counters`] exactly as the serial code records into
/// its single [`Counters`], return the shard (or fold it into the
/// per-item result), and total with [`CounterShard::merge_all`] after
/// the pool joins. Because merging is field-wise `u64` addition, the
/// total is bit-identical to serial accumulation in any order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterShard(Counters);

impl CounterShard {
    /// A fresh zeroed shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard's counters, for kernels to record into.
    pub fn counters(&mut self) -> &mut Counters {
        &mut self.0
    }

    /// Consumes the shard, yielding its counts.
    pub fn into_counters(self) -> Counters {
        self.0
    }

    /// Merges any number of shards into one total via
    /// [`Counters::merge`].
    pub fn merge_all(shards: impl IntoIterator<Item = CounterShard>) -> Counters {
        let mut total = Counters::default();
        for shard in shards {
            total.merge(&shard.0);
        }
        total
    }
}

impl From<Counters> for CounterShard {
    fn from(c: Counters) -> Self {
        CounterShard(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_trace_is_ordinal_and_job_count_invariant() {
        use crate::trace::EventKind;
        let run = |jobs: usize| {
            set_jobs(jobs);
            let sink = Arc::new(TraceSink::new());
            set_task_trace(Some(sink.clone()));
            let _ = par_map((0..10usize).collect(), |i| i * i);
            let _ = par_map((0..3usize).collect(), |i| i + 1);
            set_task_trace(None);
            set_jobs(0);
            sink.finish()
        };
        let serial = run(1);
        let pooled = run(8);
        assert_eq!(
            serial, pooled,
            "ordinal pool spans must not depend on job count"
        );
        // Two calls: (10 tasks + 1 call span) + (3 tasks + 1 call span).
        let spans = serial.events.iter().filter(|e| e.kind == EventKind::Span);
        assert_eq!(spans.count(), 15);
        // Second call starts after the first call's claimed tick range.
        let calls: Vec<_> = serial
            .events
            .iter()
            .filter(|e| e.track == (pids::HOST_POOL, 0))
            .collect();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].ts_us, 0.0);
        assert_eq!(calls[1].ts_us, 11.0);
    }

    #[test]
    fn detached_task_trace_records_nothing() {
        let sink = Arc::new(TraceSink::new());
        set_task_trace(Some(sink.clone()));
        set_task_trace(None);
        let _ = par_map((0..4usize).collect(), |i| i);
        assert!(sink.is_empty());
    }

    #[test]
    fn par_map_untraced_is_silent_even_when_attached() {
        let sink = Arc::new(TraceSink::new());
        set_task_trace(Some(sink.clone()));
        let out = par_map_untraced((0..9usize).collect(), |i| i * 2);
        set_task_trace(None);
        assert_eq!(out, (0..9usize).map(|i| i * 2).collect::<Vec<_>>());
        assert!(
            sink.is_empty(),
            "setup fan-out must not emit pool-call spans"
        );
    }

    #[test]
    fn par_map_preserves_order_and_values() {
        let out = par_map((0..257usize).collect(), |i| i * i);
        assert_eq!(out, (0..257usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(Vec::<usize>::new(), |i| i), Vec::<usize>::new());
        assert_eq!(par_map(vec![41usize], |i| i + 1), vec![42]);
    }

    #[test]
    fn par_map_with_reuses_worker_state() {
        // Each worker's scratch buffer is initialised once; results
        // must not depend on which worker processed which item.
        let out = par_map_with(
            (0..64u64).collect(),
            || vec![0u8; 16],
            |scratch, i| {
                scratch[0] = scratch[0].wrapping_add(1); // state mutates freely
                i * 3
            },
        );
        assert_eq!(out, (0..64u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_exactly_once() {
        for len in [0usize, 1, 7, 64, 1000] {
            let ranges = par_chunks(len, |r| r);
            let flat: Vec<usize> = ranges.into_iter().flatten().collect();
            assert_eq!(flat, (0..len).collect::<Vec<_>>(), "len {len}");
        }
    }

    #[test]
    fn chunk_ranges_are_contiguous_and_balanced() {
        let ranges = chunk_ranges(100, 4);
        assert!(ranges.len() >= 4, "want several chunks per job");
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 100);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn counter_shards_merge_to_serial_total() {
        // Serial reference: one Counters accumulating every item.
        let mut serial = Counters::default();
        for i in 0..100u64 {
            serial.mma_insts += i;
            serial.dram_read_bytes += 2 * i;
        }
        // Sharded: each item records into its worker's shard.
        let shards = par_map((0..100u64).collect(), |i| {
            let mut shard = CounterShard::new();
            shard.counters().mma_insts += i;
            shard.counters().dram_read_bytes += 2 * i;
            shard
        });
        let total = CounterShard::merge_all(shards);
        assert_eq!(total, serial);
    }

    #[test]
    fn job_counts_agree_bitwise() {
        // Flip-and-restore stays inside one #[test]: the override is
        // process-global and the harness runs tests concurrently.
        set_jobs(1);
        let serial = par_map((0..500usize).collect(), |i| (i as f32).sin());
        set_jobs(4);
        let parallel = par_map((0..500usize).collect(), |i| (i as f32).sin());
        set_jobs(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_catch_isolates_poisoned_items() {
        let out = par_map_catch((0..16usize).collect(), |i| {
            if i == 5 || i == 11 {
                panic!("poisoned item {i}");
            }
            i * 2
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            match r {
                Ok(v) if i != 5 && i != 11 => assert_eq!(*v, i * 2),
                Err(msg) if i == 5 || i == 11 => {
                    assert_eq!(msg, &format!("poisoned item {i}"));
                }
                other => panic!("slot {i}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn panic_message_handles_payload_kinds() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(s.as_ref()), "static str");
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(owned.as_ref()), "owned");
        let odd: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(odd.as_ref()), "non-string panic payload");
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        set_jobs(0); // harmless even if racing: default is multi-job
        par_map((0..8usize).collect(), |i| {
            if i == 5 {
                panic!("worker boom");
            }
            i
        });
    }
}
