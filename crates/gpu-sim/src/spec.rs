//! GPU parameter sheets ("specs") for the simulated devices.
//!
//! The paper evaluates on NVIDIA RTX4090 (Ada, SM 8.9) and A6000 (Ampere,
//! SM 8.6). A spec captures every microarchitectural constant the timing
//! and occupancy models need. Specs are plain data, so retargeting the
//! simulator to another device (paper §6) is a matter of filling in a new
//! sheet.

/// Interconnect between GPUs in a multi-GPU node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Interconnect {
    /// PCIe with the given unidirectional bandwidth in GB/s.
    Pcie { bandwidth_gbs: f64 },
    /// Pairwise NVLink with the given unidirectional bandwidth in GB/s.
    NvLink { bandwidth_gbs: f64 },
}

impl Interconnect {
    /// Unidirectional bandwidth in bytes per second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        match self {
            Interconnect::Pcie { bandwidth_gbs } | Interconnect::NvLink { bandwidth_gbs } => {
                bandwidth_gbs * 1.0e9
            }
        }
    }

    /// Per-message fixed latency in seconds (launch + link setup).
    pub fn latency_sec(&self) -> f64 {
        match self {
            Interconnect::Pcie { .. } => 10.0e-6,
            Interconnect::NvLink { .. } => 4.0e-6,
        }
    }
}

/// Microarchitectural description of a simulated GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Compute capability, e.g. (8, 9) for Ada.
    pub compute_capability: (u32, u32),
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock in Hz (boost clock; kernels in the paper run at boost).
    pub clock_hz: f64,
    /// Peak DRAM bandwidth in bytes/s.
    pub dram_bandwidth: f64,
    /// DRAM access latency in core cycles (L2 miss, to first data).
    pub dram_latency_cycles: u32,
    /// Unified L2 cache size in bytes.
    pub l2_bytes: usize,
    /// L2 hit latency in cycles.
    pub l2_latency_cycles: u32,
    /// Maximum shared memory per SM in bytes (carve-out configurable).
    pub smem_per_sm: usize,
    /// Maximum shared memory per thread block in bytes.
    pub smem_per_block: usize,
    /// Shared memory banks (32 on all modern NVIDIA parts).
    pub smem_banks: u32,
    /// Bytes per shared memory bank per cycle (4 on all modern parts).
    pub smem_bank_bytes: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Maximum registers per thread.
    pub max_regs_per_thread: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Warp size (32).
    pub warp_size: u32,
    /// Warp schedulers per SM (issue slots per cycle).
    pub schedulers_per_sm: u32,
    /// Dense FP16 Tensor-Core throughput per SM: FLOPs per cycle
    /// (multiply and add both count). Ada: 512 FMA = 1024 FLOP/cycle/SM.
    pub tc_flops_per_cycle_per_sm: f64,
    /// Cycles for one warp-wide `mma.m16n8k16` issue-to-complete.
    pub mma_latency_cycles: u32,
    /// FP32 CUDA-core FLOPs per cycle per SM (128 cores × 2).
    pub cuda_flops_per_cycle_per_sm: f64,
    /// Device memory capacity in bytes.
    pub memory_capacity: usize,
    /// Node-level interconnect used for tensor parallelism.
    pub interconnect: Interconnect,
}

impl GpuSpec {
    /// NVIDIA GeForce RTX 4090 (Ada Lovelace, AD102), as used on the
    /// paper's platform 1: 128 SMs, 24 GB GDDR6X, PCIe interconnect at
    /// 30.5 GB/s measured.
    pub fn rtx4090() -> Self {
        GpuSpec {
            name: "RTX4090",
            compute_capability: (8, 9),
            sm_count: 128,
            clock_hz: 2.52e9,
            dram_bandwidth: 1008.0e9,
            dram_latency_cycles: 560,
            l2_bytes: 72 * 1024 * 1024,
            l2_latency_cycles: 240,
            smem_per_sm: 100 * 1024,
            smem_per_block: 99 * 1024,
            smem_banks: 32,
            smem_bank_bytes: 4,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 24,
            max_threads_per_block: 1024,
            warp_size: 32,
            schedulers_per_sm: 4,
            tc_flops_per_cycle_per_sm: 1024.0,
            mma_latency_cycles: 16,
            cuda_flops_per_cycle_per_sm: 256.0,
            memory_capacity: 24 * 1024 * 1024 * 1024,
            interconnect: Interconnect::Pcie {
                bandwidth_gbs: 30.5,
            },
        }
    }

    /// NVIDIA RTX A6000 (Ampere, GA102), the paper's platform 2: 84 SMs,
    /// 48 GB GDDR6, pairwise NVLink.
    pub fn a6000() -> Self {
        GpuSpec {
            name: "A6000",
            compute_capability: (8, 6),
            sm_count: 84,
            clock_hz: 1.80e9,
            dram_bandwidth: 768.0e9,
            dram_latency_cycles: 520,
            l2_bytes: 6 * 1024 * 1024,
            l2_latency_cycles: 220,
            smem_per_sm: 100 * 1024,
            smem_per_block: 99 * 1024,
            smem_banks: 32,
            smem_bank_bytes: 4,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            warp_size: 32,
            schedulers_per_sm: 4,
            tc_flops_per_cycle_per_sm: 1024.0,
            mma_latency_cycles: 16,
            cuda_flops_per_cycle_per_sm: 256.0,
            memory_capacity: 48 * 1024 * 1024 * 1024,
            interconnect: Interconnect::NvLink {
                bandwidth_gbs: 56.2,
            },
        }
    }

    /// An A100-like sheet exercising the retargeting hook discussed in the
    /// paper's §6 (not part of the paper's evaluation).
    pub fn a100_like() -> Self {
        GpuSpec {
            name: "A100-like",
            compute_capability: (8, 0),
            sm_count: 108,
            clock_hz: 1.41e9,
            dram_bandwidth: 1555.0e9,
            dram_latency_cycles: 480,
            l2_bytes: 40 * 1024 * 1024,
            l2_latency_cycles: 200,
            smem_per_sm: 164 * 1024,
            smem_per_block: 163 * 1024,
            smem_banks: 32,
            smem_bank_bytes: 4,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            schedulers_per_sm: 4,
            tc_flops_per_cycle_per_sm: 2048.0,
            mma_latency_cycles: 16,
            cuda_flops_per_cycle_per_sm: 128.0,
            memory_capacity: 40 * 1024 * 1024 * 1024,
            interconnect: Interconnect::NvLink {
                bandwidth_gbs: 300.0,
            },
        }
    }

    /// Peak dense FP16 Tensor-Core throughput of the whole device, FLOP/s.
    pub fn peak_tc_flops(&self) -> f64 {
        self.tc_flops_per_cycle_per_sm * self.clock_hz * f64::from(self.sm_count)
    }

    /// Peak FP32 CUDA-core throughput of the whole device, FLOP/s.
    pub fn peak_cuda_flops(&self) -> f64 {
        self.cuda_flops_per_cycle_per_sm * self.clock_hz * f64::from(self.sm_count)
    }

    /// The ridge point of the Tensor-Core roofline in FLOP/byte: compute
    /// intensity above which kernels become compute-bound.
    pub fn tc_ridge_point(&self) -> f64 {
        self.peak_tc_flops() / self.dram_bandwidth
    }

    /// Converts a cycle count on this device to seconds.
    pub fn cycles_to_sec(&self, cycles: f64) -> f64 {
        cycles / self.clock_hz
    }

    /// Converts seconds to cycles on this device.
    pub fn sec_to_cycles(&self, sec: f64) -> f64 {
        sec * self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx4090_headline_numbers() {
        let g = GpuSpec::rtx4090();
        // ~330 TFLOPS FP16 TC with FP32 accumulate (marketing: 330.3).
        let tflops = g.peak_tc_flops() / 1e12;
        assert!((tflops - 330.0).abs() < 10.0, "got {tflops}");
        assert_eq!(g.sm_count, 128);
        assert_eq!(g.memory_capacity, 24 * 1024 * 1024 * 1024);
    }

    #[test]
    fn a6000_headline_numbers() {
        let g = GpuSpec::a6000();
        let tflops = g.peak_tc_flops() / 1e12;
        // A6000: ~154 TFLOPS FP16 TC.
        assert!((tflops - 155.0).abs() < 10.0, "got {tflops}");
        assert_eq!(g.memory_capacity, 48 * 1024 * 1024 * 1024);
    }

    #[test]
    fn ridge_point_is_hundreds_of_flop_per_byte() {
        // Both parts have ridge points in the hundreds, so decode-phase
        // GEMM (CI ~ batch size) sits far into the memory-bound region.
        assert!(GpuSpec::rtx4090().tc_ridge_point() > 200.0);
        assert!(GpuSpec::a6000().tc_ridge_point() > 150.0);
    }

    #[test]
    fn cycle_second_roundtrip() {
        let g = GpuSpec::rtx4090();
        let s = g.cycles_to_sec(g.clock_hz);
        assert!((s - 1.0).abs() < 1e-12);
        assert!((g.sec_to_cycles(0.5) - 0.5 * g.clock_hz).abs() < 1.0);
    }

    #[test]
    fn interconnects_match_paper_platforms() {
        assert!(matches!(
            GpuSpec::rtx4090().interconnect,
            Interconnect::Pcie { .. }
        ));
        assert!(matches!(
            GpuSpec::a6000().interconnect,
            Interconnect::NvLink { .. }
        ));
        let pcie = GpuSpec::rtx4090().interconnect;
        assert!((pcie.bandwidth_bytes_per_sec() - 30.5e9).abs() < 1.0);
    }
}
