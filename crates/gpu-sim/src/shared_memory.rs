//! Shared-memory bank model.
//!
//! Modern NVIDIA SMs expose shared memory through 32 banks of 4-byte words.
//! A warp access completes in one transaction ("wavefront") unless two or
//! more lanes address *different* 4-byte words in the *same* bank — each
//! extra word in the most-contended bank costs one replay. Accesses wider
//! than 4 B per lane are split into phases (8 B → two half-warp phases,
//! 16 B → four quarter-warp phases), exactly as hardware does.
//!
//! Flash-LLM's sparse scatter into shared memory suffers replays here
//! (paper Figure 12, "bank conflicts"); SpInfer's layout avoids them. Both
//! facts must *emerge* from addresses, so this model computes conflicts
//! from the real addresses kernels touch.

use crate::counters::Counters;
use crate::fault::FaultInjector;
use crate::fp16::Half;

/// Number of shared memory banks.
pub const NUM_BANKS: u64 = 32;
/// Bytes per bank word.
pub const BANK_WORD: u64 = 4;

/// Result of analysing one warp-wide shared-memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmemAccess {
    /// Total transactions, including replays (minimum 1 per phase with any
    /// active lane).
    pub transactions: u64,
    /// Replay transactions beyond the conflict-free minimum.
    pub conflicts: u64,
}

/// Computes transactions and conflicts for per-lane byte addresses into
/// shared memory, each lane accessing `bytes_per_lane` (4, 8 or 16).
///
/// Lanes set to `None` are predicated off. Broadcast (multiple lanes
/// reading the *same* word) is conflict-free, as on hardware.
pub fn analyze_warp_access(addrs: &[Option<u64>; 32], bytes_per_lane: u32) -> SmemAccess {
    assert!(
        matches!(bytes_per_lane, 2 | 4 | 8 | 16),
        "unsupported access width {bytes_per_lane}"
    );
    // Hardware splits wide accesses into phases of 32/ (width/4) lanes.
    let lanes_per_phase: usize = match bytes_per_lane {
        2 | 4 => 32,
        8 => 16,
        16 => 8,
        _ => unreachable!(),
    };
    let mut transactions = 0u64;
    let mut conflicts = 0u64;
    // Fixed per-bank word lists on the stack instead of a heap map.
    // This analysis runs for every warp shared-memory access the
    // simulator executes, so it must not allocate. Capacity 32 per bank
    // is exact: a lane's words are consecutive, hence in distinct banks
    // (a ≤16 B access spans ≤4 of the 32-word bank cycle), so one bank
    // holds at most one word per lane per phase — and the worst case
    // (stride 128: all 32 lanes, one bank) genuinely reaches 32. The
    // word storage is never cleared; `word_count` tracks validity.
    let mut bank_words = [[0u64; 32]; NUM_BANKS as usize];
    for phase in addrs.chunks(lanes_per_phase) {
        // Narrow-window fast path: find the phase's word span in one
        // cheap pass. When every word the phase touches lies inside one
        // 32-word bank cycle, each bank holds at most one distinct word,
        // so the degree is 1 by construction — one transaction, zero
        // conflicts — without running the per-bank analysis. This is the
        // shape of the decode hot path: bitmap broadcasts (one 8 B
        // word), SMBD value gathers (≤64 packed FP16 values span
        // ≤128 B), and row-major ldsm phases (8 lanes × 16 B = 128 B).
        let mut wmin = u64::MAX;
        let mut wmax = 0u64;
        for addr in phase.iter().flatten() {
            wmin = wmin.min(addr / BANK_WORD);
            wmax = wmax.max((addr + u64::from(bytes_per_lane) - 1) / BANK_WORD);
        }
        if wmin == u64::MAX {
            continue; // no active lanes in this phase
        }
        if wmax - wmin < NUM_BANKS {
            transactions += 1;
            continue;
        }
        let mut word_count = [0u8; NUM_BANKS as usize];
        for addr in phase.iter().flatten() {
            // A lane access may span several words when wider than 4 B.
            let first_word = addr / BANK_WORD;
            let last_word = (addr + u64::from(bytes_per_lane) - 1) / BANK_WORD;
            for w in first_word..=last_word {
                let bank = (w % NUM_BANKS) as usize;
                let n = usize::from(word_count[bank]);
                if !bank_words[bank][..n].contains(&w) {
                    bank_words[bank][n] = w;
                    word_count[bank] = (n + 1) as u8;
                }
            }
        }
        let degree = u64::from(*word_count.iter().max().expect("32 banks"));
        transactions += degree;
        conflicts += degree - 1;
    }
    SmemAccess {
        transactions,
        conflicts,
    }
}

/// Records a warp shared-memory *load* into the counters.
pub fn warp_smem_load(counters: &mut Counters, addrs: &[Option<u64>; 32], bytes_per_lane: u32) {
    let a = analyze_warp_access(addrs, bytes_per_lane);
    counters.smem_load_transactions += a.transactions;
    counters.smem_bank_conflicts += a.conflicts;
    counters.insts_issued += 1;
}

/// Records a warp *broadcast* load — every lane reads the same
/// shared-memory address — without materialising the 32 identical
/// addresses. Each phase's single ≤16 B access spans consecutive words
/// in distinct banks, so it costs one transaction per phase and no
/// conflicts regardless of the address; equality with
/// [`warp_smem_load`] on uniform addresses is pinned by this module's
/// tests. This is the SMBD bitmap broadcast, issued once per
/// BitmapTile decode.
pub fn warp_smem_broadcast_load(counters: &mut Counters, bytes_per_lane: u32) {
    let phases: u64 = match bytes_per_lane {
        2 | 4 => 1,
        8 => 2,
        16 => 4,
        _ => panic!("unsupported access width {bytes_per_lane}"),
    };
    counters.smem_load_transactions += phases;
    counters.insts_issued += 1;
}

/// Records a warp *gather* load — one `≤ 4` B element per active lane,
/// all touched words inside a span of at most one full bank cycle —
/// from the span alone, without materialising per-lane addresses.
///
/// `word_span` is `max_word − min_word` over the words active lanes
/// touch (the end words are touched by construction); it must be
/// `≤ NUM_BANKS`. Within such a span the only same-bank word pair is
/// the two ends at exactly `NUM_BANKS` apart, so the access degree is
/// 2 there and 1 otherwise — bit-identical counter writes and poison
/// draws to [`warp_smem_load_f`] on the same addresses, pinned by this
/// module's tests. This is the SMBD value-gather shape: packed 2 B
/// values inside a ≤128 B window.
pub fn warp_smem_gather_load_f(
    counters: &mut Counters,
    word_span: u64,
    active: u32,
    fault: Option<&FaultInjector>,
    key: u64,
) -> Option<(usize, Half)> {
    debug_assert!(
        word_span <= NUM_BANKS,
        "gather word span {word_span} exceeds one bank cycle"
    );
    let degree = if word_span >= NUM_BANKS { 2 } else { 1 };
    counters.smem_load_transactions += degree;
    counters.smem_bank_conflicts += degree - 1;
    counters.insts_issued += 1;
    let inj = fault?;
    let (site, poison) = inj.poison_site(counters, key, active)?;
    Some((site as usize, poison))
}

/// Records a warp shared-memory *store* into the counters.
pub fn warp_smem_store(counters: &mut Counters, addrs: &[Option<u64>; 32], bytes_per_lane: u32) {
    let a = analyze_warp_access(addrs, bytes_per_lane);
    counters.smem_store_transactions += a.transactions;
    counters.smem_bank_conflicts += a.conflicts;
    counters.insts_issued += 1;
}

/// Fault-aware variant of [`warp_smem_load`]: identical counter
/// accounting, plus an FP16-poison draw when `fault` is `Some`. Returns
/// `Some((lane_sel, poison))` when the `lane_sel`-th *active* lane's
/// gathered value must be replaced by `poison` (NaN/±Inf). `key` must
/// identify the access site deterministically (e.g. GroupTile index
/// mixed with the iteration) — shared-memory addresses repeat across
/// tiles, so the address alone is not a usable key.
pub fn warp_smem_load_f(
    counters: &mut Counters,
    addrs: &[Option<u64>; 32],
    bytes_per_lane: u32,
    fault: Option<&FaultInjector>,
    key: u64,
) -> Option<(usize, Half)> {
    warp_smem_load(counters, addrs, bytes_per_lane);
    let inj = fault?;
    let active = addrs.iter().flatten().count() as u32;
    let (site, poison) = inj.poison_site(counters, key, active)?;
    Some((site as usize, poison))
}

/// Records an `ldmatrix.x4` load (LDSM.M88 ×4): a warp loads four 8×8 FP16
/// matrices (16 B per lane-row). With the row-aligned layouts our kernels
/// use, each of the 4 phases reads 8 rows of 16 B; conflicts are computed
/// from the supplied 32 row addresses.
pub fn warp_ldsm_x4(counters: &mut Counters, row_addrs: &[Option<u64>; 32]) {
    let a = analyze_warp_access(row_addrs, 16);
    counters.smem_load_transactions += a.transactions;
    counters.smem_bank_conflicts += a.conflicts;
    counters.ldsm_insts += 1;
    counters.insts_issued += 1;
}

/// Builds a per-lane address array where lane `i` accesses
/// `base + i * stride` (byte units).
pub fn strided_addrs(base: u64, stride: u64) -> [Option<u64>; 32] {
    let mut out = [None; 32];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = Some(base + i as u64 * stride);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// The previous `HashMap`-based implementation, kept verbatim as the
    /// reference the allocation-free rewrite is property-tested against.
    fn analyze_warp_access_hashmap(addrs: &[Option<u64>; 32], bytes_per_lane: u32) -> SmemAccess {
        let lanes_per_phase: usize = match bytes_per_lane {
            2 | 4 => 32,
            8 => 16,
            16 => 8,
            _ => unreachable!(),
        };
        let mut transactions = 0u64;
        let mut conflicts = 0u64;
        for phase in addrs.chunks(lanes_per_phase) {
            let mut words_in_bank: HashMap<u64, Vec<u64>> = HashMap::new();
            let mut any = false;
            for addr in phase.iter().flatten() {
                any = true;
                let first_word = addr / BANK_WORD;
                let last_word = (addr + u64::from(bytes_per_lane) - 1) / BANK_WORD;
                for w in first_word..=last_word {
                    let bank = w % NUM_BANKS;
                    let entry = words_in_bank.entry(bank).or_default();
                    if !entry.contains(&w) {
                        entry.push(w);
                    }
                }
            }
            if !any {
                continue;
            }
            let degree = words_in_bank
                .values()
                .map(|v| v.len() as u64)
                .max()
                .unwrap_or(1);
            transactions += degree;
            conflicts += degree - 1;
        }
        SmemAccess {
            transactions,
            conflicts,
        }
    }

    /// 32 lanes derived from `seed` (SplitMix64): each lane predicated
    /// off with probability `off_pct`% or holding an arbitrary byte
    /// address within a 16 KiB shared-memory window. Unaligned addresses
    /// are included so word-spanning paths are exercised.
    fn random_addrs(seed: u64, off_pct: u64) -> [Option<u64>; 32] {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut addrs = [None; 32];
        for slot in addrs.iter_mut() {
            if next() % 100 >= off_pct {
                *slot = Some(next() % 16384);
            }
        }
        addrs
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn allocation_free_matches_hashmap_reference(
            seed: u64,
            off_pct in prop::sample::select(vec![0u64, 20, 90, 100]),
            width in prop::sample::select(vec![2u32, 4, 8, 16]),
        ) {
            let addrs = random_addrs(seed, off_pct);
            prop_assert_eq!(
                analyze_warp_access(&addrs, width),
                analyze_warp_access_hashmap(&addrs, width)
            );
        }

        #[test]
        fn broadcast_matches_reference_at_every_width(
            addr in 0u64..16384,
            width in prop::sample::select(vec![2u32, 4, 8, 16]),
        ) {
            let addrs = [Some(addr); 32];
            prop_assert_eq!(
                analyze_warp_access(&addrs, width),
                analyze_warp_access_hashmap(&addrs, width)
            );
        }

        #[test]
        fn broadcast_load_matches_address_array_form(
            addr in 0u64..16384,
            width in prop::sample::select(vec![2u32, 4, 8, 16]),
        ) {
            let mut via_addrs = Counters::new();
            warp_smem_load(&mut via_addrs, &[Some(addr); 32], width);
            let mut via_helper = Counters::new();
            warp_smem_broadcast_load(&mut via_helper, width);
            prop_assert_eq!(via_addrs, via_helper);
        }

        #[test]
        fn gather_load_matches_address_array_form(
            base in 0u64..8192,
            mask: u64,
            seed: u64,
        ) {
            // The SMBD gather shape: ascending 2 B elements at
            // `base + idx*2` for a subset (`mask` bits) of 64 consecutive
            // value slots — any parity of `base`, so word-crossing lanes
            // and the exactly-one-bank-cycle span are both reachable.
            let mask = if mask == 0 { 1u64 << (seed % 64) } else { mask };
            let mut addrs = [None; 32];
            let mut lo = None;
            let mut hi = 0u64;
            let mut active = 0u32;
            for idx in 0..64u64 {
                if mask & (1 << idx) == 0 {
                    continue;
                }
                let a = base + idx * 2;
                // Lane assignment is irrelevant to a single-phase 2 B
                // analysis; pack actives into ascending lanes, dropping
                // the overflow when more than 32 slots are picked.
                if active < 32 {
                    addrs[active as usize] = Some(a);
                    lo.get_or_insert(a);
                    hi = a;
                    active += 1;
                }
            }
            let span = (hi + 1) / BANK_WORD - lo.expect("active") / BANK_WORD;

            let mut via_addrs = Counters::new();
            let mut via_span = Counters::new();
            let r_addrs = warp_smem_load_f(&mut via_addrs, &addrs, 2, None, seed);
            let r_span = warp_smem_gather_load_f(&mut via_span, span, active, None, seed);
            prop_assert_eq!(r_addrs, r_span);
            prop_assert_eq!(via_addrs, via_span);

            // Same parity under an always-firing injector: identical
            // poison site, value, and fault accounting.
            let plan = crate::fault::FaultPlan {
                fp16_poison_rate: 1.0,
                ..crate::fault::FaultPlan::default()
            };
            let inj = crate::fault::FaultInjector::new(plan);
            let mut fa = Counters::new();
            let mut fs = Counters::new();
            let r_addrs = warp_smem_load_f(&mut fa, &addrs, 2, Some(&inj), seed);
            let r_span = warp_smem_gather_load_f(&mut fs, span, active, Some(&inj), seed);
            prop_assert_eq!(r_addrs, r_span);
            prop_assert_eq!(fa, fs);
        }

        #[test]
        fn strided_matches_reference(
            base in 0u64..4096,
            stride in 0u64..256,
            width in prop::sample::select(vec![2u32, 4, 8, 16]),
        ) {
            let addrs = strided_addrs(base, stride);
            prop_assert_eq!(
                analyze_warp_access(&addrs, width),
                analyze_warp_access_hashmap(&addrs, width)
            );
        }
    }

    #[test]
    fn unit_stride_4b_is_conflict_free() {
        let addrs = strided_addrs(0, 4);
        let a = analyze_warp_access(&addrs, 4);
        assert_eq!(a.transactions, 1);
        assert_eq!(a.conflicts, 0);
    }

    #[test]
    fn stride_128_is_32_way_conflict() {
        // All lanes hit bank 0 with distinct words: the classic worst case.
        let addrs = strided_addrs(0, 128);
        let a = analyze_warp_access(&addrs, 4);
        assert_eq!(a.transactions, 32);
        assert_eq!(a.conflicts, 31);
    }

    #[test]
    fn broadcast_is_conflict_free() {
        let addrs = [Some(64u64); 32];
        let a = analyze_warp_access(&addrs, 4);
        assert_eq!(a.transactions, 1);
        assert_eq!(a.conflicts, 0);
    }

    #[test]
    fn stride_8_is_2way_conflict() {
        // 4 B accesses with 8 B stride: lanes 0 and 16 share bank 0 with
        // different words, and so on -> 2-way conflict in a single phase.
        let addrs = strided_addrs(0, 8);
        let a = analyze_warp_access(&addrs, 4);
        assert_eq!(a.transactions, 2);
        assert_eq!(a.conflicts, 1);
    }

    #[test]
    fn vector_8b_unit_stride_is_two_clean_phases() {
        // 8 B per lane, contiguous: two 16-lane phases, each covering
        // 128 B across all 32 banks exactly once.
        let addrs = strided_addrs(0, 8);
        let a = analyze_warp_access(&addrs, 8);
        assert_eq!(a.transactions, 2);
        assert_eq!(a.conflicts, 0);
    }

    #[test]
    fn vector_16b_unit_stride_is_four_clean_phases() {
        let addrs = strided_addrs(0, 16);
        let a = analyze_warp_access(&addrs, 16);
        assert_eq!(a.transactions, 4);
        assert_eq!(a.conflicts, 0);
    }

    #[test]
    fn predicated_off_warp_is_free() {
        let addrs = [None; 32];
        let a = analyze_warp_access(&addrs, 4);
        assert_eq!(a.transactions, 0);
        assert_eq!(a.conflicts, 0);
    }

    #[test]
    fn counter_recording() {
        let mut c = Counters::new();
        warp_smem_store(&mut c, &strided_addrs(0, 128), 4);
        assert_eq!(c.smem_store_transactions, 32);
        assert_eq!(c.smem_bank_conflicts, 31);
        warp_smem_load(&mut c, &strided_addrs(0, 4), 4);
        assert_eq!(c.smem_load_transactions, 1);
        assert_eq!(c.bank_conflict_rate(), 31.0 / 33.0);
    }

    #[test]
    fn smem_fault_hook_poisons_one_active_lane() {
        use crate::fault::{FaultInjector, FaultPlan};
        let addrs = strided_addrs(0, 4);
        // None: golden accounting, no poison.
        let mut a = Counters::new();
        let mut b = Counters::new();
        warp_smem_load(&mut a, &addrs, 4);
        assert_eq!(warp_smem_load_f(&mut b, &addrs, 4, None, 9), None);
        assert_eq!(a, b);
        // Rate 1.0: a non-finite value lands on an in-range lane, and the
        // same key re-draws the same poison.
        let plan = FaultPlan {
            fp16_poison_rate: 1.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let mut c = Counters::new();
        let (lane, p) = warp_smem_load_f(&mut c, &addrs, 4, Some(&inj), 9).expect("fires");
        assert!(lane < 32);
        assert!(p.is_nan() || p.is_infinite());
        let again = warp_smem_load_f(&mut c, &addrs, 4, Some(&inj), 9);
        assert_eq!(again, Some((lane, p)));
        assert_eq!(c.faults_injected, 2);
    }

    #[test]
    fn ldsm_row_layout_conflict_free() {
        // 32 rows of 16 B, contiguous: row i at i*16. Phase of 8 lanes
        // covers 128 B = all banks once.
        let mut c = Counters::new();
        warp_ldsm_x4(&mut c, &strided_addrs(0, 16));
        assert_eq!(c.smem_bank_conflicts, 0);
        assert_eq!(c.ldsm_insts, 1);
        assert_eq!(c.smem_load_transactions, 4);
    }
}
