//! Shared-memory bank model.
//!
//! Modern NVIDIA SMs expose shared memory through 32 banks of 4-byte words.
//! A warp access completes in one transaction ("wavefront") unless two or
//! more lanes address *different* 4-byte words in the *same* bank — each
//! extra word in the most-contended bank costs one replay. Accesses wider
//! than 4 B per lane are split into phases (8 B → two half-warp phases,
//! 16 B → four quarter-warp phases), exactly as hardware does.
//!
//! Flash-LLM's sparse scatter into shared memory suffers replays here
//! (paper Figure 12, "bank conflicts"); SpInfer's layout avoids them. Both
//! facts must *emerge* from addresses, so this model computes conflicts
//! from the real addresses kernels touch.

use crate::counters::Counters;
use crate::fault::FaultInjector;
use crate::fp16::Half;

/// Number of shared memory banks.
pub const NUM_BANKS: u64 = 32;
/// Bytes per bank word.
pub const BANK_WORD: u64 = 4;

/// Result of analysing one warp-wide shared-memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmemAccess {
    /// Total transactions, including replays (minimum 1 per phase with any
    /// active lane).
    pub transactions: u64,
    /// Replay transactions beyond the conflict-free minimum.
    pub conflicts: u64,
}

/// Computes transactions and conflicts for per-lane byte addresses into
/// shared memory, each lane accessing `bytes_per_lane` (4, 8 or 16).
///
/// Lanes set to `None` are predicated off. Broadcast (multiple lanes
/// reading the *same* word) is conflict-free, as on hardware.
pub fn analyze_warp_access(addrs: &[Option<u64>; 32], bytes_per_lane: u32) -> SmemAccess {
    assert!(
        matches!(bytes_per_lane, 2 | 4 | 8 | 16),
        "unsupported access width {bytes_per_lane}"
    );
    // Hardware splits wide accesses into phases of 32/ (width/4) lanes.
    let lanes_per_phase: usize = match bytes_per_lane {
        2 | 4 => 32,
        8 => 16,
        16 => 8,
        _ => unreachable!(),
    };
    let mut transactions = 0u64;
    let mut conflicts = 0u64;
    // Fixed per-bank word lists on the stack instead of a heap map.
    // This analysis runs for every warp shared-memory access the
    // simulator executes, so it must not allocate. Capacity 32 per bank
    // is exact: a lane's words are consecutive, hence in distinct banks
    // (a ≤16 B access spans ≤4 of the 32-word bank cycle), so one bank
    // holds at most one word per lane per phase — and the worst case
    // (stride 128: all 32 lanes, one bank) genuinely reaches 32. The
    // word storage is never cleared; `word_count` tracks validity.
    let mut bank_words = [[0u64; 32]; NUM_BANKS as usize];
    for phase in addrs.chunks(lanes_per_phase) {
        let mut word_count = [0u8; NUM_BANKS as usize];
        let mut any = false;
        for addr in phase.iter().flatten() {
            any = true;
            // A lane access may span several words when wider than 4 B.
            let first_word = addr / BANK_WORD;
            let last_word = (addr + u64::from(bytes_per_lane) - 1) / BANK_WORD;
            for w in first_word..=last_word {
                let bank = (w % NUM_BANKS) as usize;
                let n = usize::from(word_count[bank]);
                if !bank_words[bank][..n].contains(&w) {
                    bank_words[bank][n] = w;
                    word_count[bank] = (n + 1) as u8;
                }
            }
        }
        if !any {
            continue;
        }
        let degree = u64::from(*word_count.iter().max().expect("32 banks"));
        transactions += degree;
        conflicts += degree - 1;
    }
    SmemAccess {
        transactions,
        conflicts,
    }
}

/// Records a warp shared-memory *load* into the counters.
pub fn warp_smem_load(counters: &mut Counters, addrs: &[Option<u64>; 32], bytes_per_lane: u32) {
    let a = analyze_warp_access(addrs, bytes_per_lane);
    counters.smem_load_transactions += a.transactions;
    counters.smem_bank_conflicts += a.conflicts;
    counters.insts_issued += 1;
}

/// Records a warp shared-memory *store* into the counters.
pub fn warp_smem_store(counters: &mut Counters, addrs: &[Option<u64>; 32], bytes_per_lane: u32) {
    let a = analyze_warp_access(addrs, bytes_per_lane);
    counters.smem_store_transactions += a.transactions;
    counters.smem_bank_conflicts += a.conflicts;
    counters.insts_issued += 1;
}

/// Fault-aware variant of [`warp_smem_load`]: identical counter
/// accounting, plus an FP16-poison draw when `fault` is `Some`. Returns
/// `Some((lane_sel, poison))` when the `lane_sel`-th *active* lane's
/// gathered value must be replaced by `poison` (NaN/±Inf). `key` must
/// identify the access site deterministically (e.g. GroupTile index
/// mixed with the iteration) — shared-memory addresses repeat across
/// tiles, so the address alone is not a usable key.
pub fn warp_smem_load_f(
    counters: &mut Counters,
    addrs: &[Option<u64>; 32],
    bytes_per_lane: u32,
    fault: Option<&FaultInjector>,
    key: u64,
) -> Option<(usize, Half)> {
    warp_smem_load(counters, addrs, bytes_per_lane);
    let inj = fault?;
    let active = addrs.iter().flatten().count() as u32;
    let (site, poison) = inj.poison_site(counters, key, active)?;
    Some((site as usize, poison))
}

/// Records an `ldmatrix.x4` load (LDSM.M88 ×4): a warp loads four 8×8 FP16
/// matrices (16 B per lane-row). With the row-aligned layouts our kernels
/// use, each of the 4 phases reads 8 rows of 16 B; conflicts are computed
/// from the supplied 32 row addresses.
pub fn warp_ldsm_x4(counters: &mut Counters, row_addrs: &[Option<u64>; 32]) {
    let a = analyze_warp_access(row_addrs, 16);
    counters.smem_load_transactions += a.transactions;
    counters.smem_bank_conflicts += a.conflicts;
    counters.ldsm_insts += 1;
    counters.insts_issued += 1;
}

/// Builds a per-lane address array where lane `i` accesses
/// `base + i * stride` (byte units).
pub fn strided_addrs(base: u64, stride: u64) -> [Option<u64>; 32] {
    let mut out = [None; 32];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = Some(base + i as u64 * stride);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// The previous `HashMap`-based implementation, kept verbatim as the
    /// reference the allocation-free rewrite is property-tested against.
    fn analyze_warp_access_hashmap(addrs: &[Option<u64>; 32], bytes_per_lane: u32) -> SmemAccess {
        let lanes_per_phase: usize = match bytes_per_lane {
            2 | 4 => 32,
            8 => 16,
            16 => 8,
            _ => unreachable!(),
        };
        let mut transactions = 0u64;
        let mut conflicts = 0u64;
        for phase in addrs.chunks(lanes_per_phase) {
            let mut words_in_bank: HashMap<u64, Vec<u64>> = HashMap::new();
            let mut any = false;
            for addr in phase.iter().flatten() {
                any = true;
                let first_word = addr / BANK_WORD;
                let last_word = (addr + u64::from(bytes_per_lane) - 1) / BANK_WORD;
                for w in first_word..=last_word {
                    let bank = w % NUM_BANKS;
                    let entry = words_in_bank.entry(bank).or_default();
                    if !entry.contains(&w) {
                        entry.push(w);
                    }
                }
            }
            if !any {
                continue;
            }
            let degree = words_in_bank
                .values()
                .map(|v| v.len() as u64)
                .max()
                .unwrap_or(1);
            transactions += degree;
            conflicts += degree - 1;
        }
        SmemAccess {
            transactions,
            conflicts,
        }
    }

    /// 32 lanes derived from `seed` (SplitMix64): each lane predicated
    /// off with probability `off_pct`% or holding an arbitrary byte
    /// address within a 16 KiB shared-memory window. Unaligned addresses
    /// are included so word-spanning paths are exercised.
    fn random_addrs(seed: u64, off_pct: u64) -> [Option<u64>; 32] {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut addrs = [None; 32];
        for slot in addrs.iter_mut() {
            if next() % 100 >= off_pct {
                *slot = Some(next() % 16384);
            }
        }
        addrs
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn allocation_free_matches_hashmap_reference(
            seed: u64,
            off_pct in prop::sample::select(vec![0u64, 20, 90, 100]),
            width in prop::sample::select(vec![2u32, 4, 8, 16]),
        ) {
            let addrs = random_addrs(seed, off_pct);
            prop_assert_eq!(
                analyze_warp_access(&addrs, width),
                analyze_warp_access_hashmap(&addrs, width)
            );
        }

        #[test]
        fn broadcast_matches_reference_at_every_width(
            addr in 0u64..16384,
            width in prop::sample::select(vec![2u32, 4, 8, 16]),
        ) {
            let addrs = [Some(addr); 32];
            prop_assert_eq!(
                analyze_warp_access(&addrs, width),
                analyze_warp_access_hashmap(&addrs, width)
            );
        }

        #[test]
        fn strided_matches_reference(
            base in 0u64..4096,
            stride in 0u64..256,
            width in prop::sample::select(vec![2u32, 4, 8, 16]),
        ) {
            let addrs = strided_addrs(base, stride);
            prop_assert_eq!(
                analyze_warp_access(&addrs, width),
                analyze_warp_access_hashmap(&addrs, width)
            );
        }
    }

    #[test]
    fn unit_stride_4b_is_conflict_free() {
        let addrs = strided_addrs(0, 4);
        let a = analyze_warp_access(&addrs, 4);
        assert_eq!(a.transactions, 1);
        assert_eq!(a.conflicts, 0);
    }

    #[test]
    fn stride_128_is_32_way_conflict() {
        // All lanes hit bank 0 with distinct words: the classic worst case.
        let addrs = strided_addrs(0, 128);
        let a = analyze_warp_access(&addrs, 4);
        assert_eq!(a.transactions, 32);
        assert_eq!(a.conflicts, 31);
    }

    #[test]
    fn broadcast_is_conflict_free() {
        let addrs = [Some(64u64); 32];
        let a = analyze_warp_access(&addrs, 4);
        assert_eq!(a.transactions, 1);
        assert_eq!(a.conflicts, 0);
    }

    #[test]
    fn stride_8_is_2way_conflict() {
        // 4 B accesses with 8 B stride: lanes 0 and 16 share bank 0 with
        // different words, and so on -> 2-way conflict in a single phase.
        let addrs = strided_addrs(0, 8);
        let a = analyze_warp_access(&addrs, 4);
        assert_eq!(a.transactions, 2);
        assert_eq!(a.conflicts, 1);
    }

    #[test]
    fn vector_8b_unit_stride_is_two_clean_phases() {
        // 8 B per lane, contiguous: two 16-lane phases, each covering
        // 128 B across all 32 banks exactly once.
        let addrs = strided_addrs(0, 8);
        let a = analyze_warp_access(&addrs, 8);
        assert_eq!(a.transactions, 2);
        assert_eq!(a.conflicts, 0);
    }

    #[test]
    fn vector_16b_unit_stride_is_four_clean_phases() {
        let addrs = strided_addrs(0, 16);
        let a = analyze_warp_access(&addrs, 16);
        assert_eq!(a.transactions, 4);
        assert_eq!(a.conflicts, 0);
    }

    #[test]
    fn predicated_off_warp_is_free() {
        let addrs = [None; 32];
        let a = analyze_warp_access(&addrs, 4);
        assert_eq!(a.transactions, 0);
        assert_eq!(a.conflicts, 0);
    }

    #[test]
    fn counter_recording() {
        let mut c = Counters::new();
        warp_smem_store(&mut c, &strided_addrs(0, 128), 4);
        assert_eq!(c.smem_store_transactions, 32);
        assert_eq!(c.smem_bank_conflicts, 31);
        warp_smem_load(&mut c, &strided_addrs(0, 4), 4);
        assert_eq!(c.smem_load_transactions, 1);
        assert_eq!(c.bank_conflict_rate(), 31.0 / 33.0);
    }

    #[test]
    fn smem_fault_hook_poisons_one_active_lane() {
        use crate::fault::{FaultInjector, FaultPlan};
        let addrs = strided_addrs(0, 4);
        // None: golden accounting, no poison.
        let mut a = Counters::new();
        let mut b = Counters::new();
        warp_smem_load(&mut a, &addrs, 4);
        assert_eq!(warp_smem_load_f(&mut b, &addrs, 4, None, 9), None);
        assert_eq!(a, b);
        // Rate 1.0: a non-finite value lands on an in-range lane, and the
        // same key re-draws the same poison.
        let plan = FaultPlan {
            fp16_poison_rate: 1.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let mut c = Counters::new();
        let (lane, p) = warp_smem_load_f(&mut c, &addrs, 4, Some(&inj), 9).expect("fires");
        assert!(lane < 32);
        assert!(p.is_nan() || p.is_infinite());
        let again = warp_smem_load_f(&mut c, &addrs, 4, Some(&inj), 9);
        assert_eq!(again, Some((lane, p)));
        assert_eq!(c.faults_injected, 2);
    }

    #[test]
    fn ldsm_row_layout_conflict_free() {
        // 32 rows of 16 B, contiguous: row i at i*16. Phase of 8 lanes
        // covers 128 B = all banks once.
        let mut c = Counters::new();
        warp_ldsm_x4(&mut c, &strided_addrs(0, 16));
        assert_eq!(c.smem_bank_conflicts, 0);
        assert_eq!(c.ldsm_insts, 1);
        assert_eq!(c.smem_load_transactions, 4);
    }
}
