//! Kernel launch abstraction.
//!
//! A simulated kernel is anything that, given a [`LaunchShape`], executes
//! functionally while recording [`Counters`], then lets the timing model
//! produce a [`KernelTiming`]. [`LaunchResult`] bundles the three.

use crate::counters::Counters;
use crate::spec::GpuSpec;
use crate::timing::{estimate_time, KernelTiming, L2Reuse, LaunchShape};

/// Outcome of one simulated kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchResult {
    /// Human-readable kernel name (e.g. `"spinfer_spmm"`).
    pub name: String,
    /// Launch geometry and schedule the kernel used.
    pub shape: LaunchShape,
    /// Event counters recorded during functional execution.
    pub counters: Counters,
    /// Timing estimate.
    pub timing: KernelTiming,
}

impl LaunchResult {
    /// Builds a result by running the timing model over recorded counters.
    pub fn from_execution(
        name: impl Into<String>,
        spec: &GpuSpec,
        shape: LaunchShape,
        counters: Counters,
        l2_reuse: &[L2Reuse],
    ) -> Self {
        let timing = estimate_time(spec, &shape, &counters, l2_reuse);
        LaunchResult {
            name: name.into(),
            shape,
            counters,
            timing,
        }
    }

    /// Kernel time in microseconds (the unit paper figures use).
    pub fn time_us(&self) -> f64 {
        self.timing.time_sec * 1e6
    }
}

/// A sequence of dependent kernel launches (e.g. main SpMM + split-K
/// reduction). Total time is the sum; counters are merged.
#[derive(Clone, Debug, Default)]
pub struct LaunchChain {
    /// Individual launches in execution order.
    pub launches: Vec<LaunchResult>,
}

impl LaunchChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        LaunchChain::default()
    }

    /// Appends a launch.
    pub fn push(&mut self, launch: LaunchResult) {
        self.launches.push(launch);
    }

    /// Total time across the chain in seconds.
    pub fn time_sec(&self) -> f64 {
        self.launches.iter().map(|l| l.timing.time_sec).sum()
    }

    /// Total time in microseconds.
    pub fn time_us(&self) -> f64 {
        self.time_sec() * 1e6
    }

    /// Merged counters across the chain.
    pub fn merged_counters(&self) -> Counters {
        let mut c = Counters::new();
        for l in &self.launches {
            c.merge(&l.counters);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::BlockResources;
    use crate::timing::PipelineMode;

    fn dummy_launch(bytes: u64) -> LaunchResult {
        let spec = GpuSpec::rtx4090();
        let shape = LaunchShape {
            grid_blocks: 512,
            block: BlockResources {
                threads: 128,
                regs_per_thread: 64,
                smem_bytes: 16 * 1024,
            },
            iters_per_block: 64.0,
            mode: PipelineMode::AsyncDoubleBuffered,
            per_iter_fixed_cycles: 10.0,
            ramp_cycles: 200.0,
            inflight_bytes_per_warp: None,
            overlap_leak: None,
        };
        let mut c = Counters::new();
        c.dram_read_bytes = bytes;
        c.useful_read_bytes = bytes;
        c.insts_issued = bytes / 512;
        LaunchResult::from_execution("dummy", &spec, shape, c, &[])
    }

    #[test]
    fn launch_result_times_are_consistent() {
        let l = dummy_launch(64 << 20);
        assert!((l.time_us() - l.timing.time_sec * 1e6).abs() < 1e-9);
        assert!(l.time_us() > 0.0);
    }

    #[test]
    fn chain_sums_times_and_merges_counters() {
        let mut chain = LaunchChain::new();
        let a = dummy_launch(64 << 20);
        let b = dummy_launch(32 << 20);
        let expected = a.timing.time_sec + b.timing.time_sec;
        chain.push(a);
        chain.push(b);
        assert!((chain.time_sec() - expected).abs() < 1e-12);
        assert_eq!(
            chain.merged_counters().dram_read_bytes,
            (64 << 20) + (32 << 20)
        );
    }
}
