//! `cp.async` commit-group semantics.
//!
//! Ampere's asynchronous copies (`LDGSTS`) are grouped: a thread issues
//! copies, `commit_group()` seals them into a group, and
//! `wait_group(N)` blocks until at most `N` groups remain in flight.
//! SpInfer's kernel (paper Algorithm 1) relies on *two independent groups
//! per iteration* — one for the bitmap/sparse data and one for the dense
//! tile — waiting on the sparse group first (`wait_group(1)`) so SMBD can
//! start while the dense copy is still in flight.
//!
//! In the functional simulator, data is copied eagerly; this tracker
//! verifies the *ordering discipline* (no reads of a buffer before the
//! matching wait) and counts groups for the pipeline model.

use crate::counters::Counters;
use crate::fault::{CommitFault, FaultInjector};

/// Tracks cp.async group state for one thread block.
#[derive(Debug, Default)]
pub struct AsyncCopyState {
    /// Copies issued since the last commit.
    uncommitted: u32,
    /// Committed groups still "in flight", oldest first. Each entry is the
    /// number of copies in that group.
    in_flight: Vec<u32>,
    /// Total groups committed over the block's lifetime.
    pub groups_committed: u64,
    /// Total wait operations executed.
    pub waits: u64,
}

impl AsyncCopyState {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        AsyncCopyState::default()
    }

    /// Records one issued `cp.async` copy.
    pub fn issue(&mut self) {
        self.uncommitted += 1;
    }

    /// Seals all uncommitted copies into a new group
    /// (`cp.async.commit_group`). Committing with zero pending copies
    /// creates an empty group, as on hardware.
    pub fn commit_group(&mut self) {
        self.in_flight.push(self.uncommitted);
        self.uncommitted = 0;
        self.groups_committed += 1;
    }

    /// Fault-aware variant of [`AsyncCopyState::commit_group`]: the
    /// group is sealed exactly as on the golden path, then — when an
    /// injector is supplied — a deterministic draw keyed by `key`
    /// (typically the group's source address) decides whether the
    /// committed payload lands intact, corrupted, or not at all. The
    /// *group tracking* is unaffected either way: a dropped group still
    /// occupies a commit slot and must still be awaited, exactly like a
    /// hardware `LDGSTS` whose data was lost in flight.
    pub fn commit_group_f(
        &mut self,
        counters: &mut Counters,
        fault: Option<&FaultInjector>,
        key: u64,
    ) -> CommitFault {
        self.commit_group();
        match fault {
            Some(inj) => inj.commit_fault(counters, key),
            None => CommitFault::None,
        }
    }

    /// Blocks until at most `n` groups remain in flight
    /// (`cp.async.wait_group N`). Returns the number of groups retired.
    pub fn wait_group(&mut self, n: usize) -> usize {
        self.waits += 1;
        let mut retired = 0;
        while self.in_flight.len() > n {
            self.in_flight.remove(0);
            retired += 1;
        }
        retired
    }

    /// Number of groups currently in flight.
    pub fn groups_in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Asserts that every group has been retired — call at block exit to
    /// catch kernels that read a buffer whose copy was never awaited.
    pub fn assert_drained(&self) {
        assert_eq!(
            self.in_flight.len(),
            0,
            "block exited with {} cp.async groups in flight",
            self.in_flight.len()
        );
        assert_eq!(
            self.uncommitted, 0,
            "block exited with {} uncommitted cp.async copies",
            self.uncommitted
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_wait_retire_in_order() {
        let mut s = AsyncCopyState::new();
        s.issue();
        s.commit_group(); // Group A.
        s.issue();
        s.issue();
        s.commit_group(); // Group B.
        assert_eq!(s.groups_in_flight(), 2);
        // wait_group(1): only the oldest (A) retires.
        assert_eq!(s.wait_group(1), 1);
        assert_eq!(s.groups_in_flight(), 1);
        assert_eq!(s.wait_group(0), 1);
        s.assert_drained();
    }

    #[test]
    fn algorithm1_two_group_pattern() {
        // Mirrors Algorithm 1 lines 16-26: sparse group then dense group;
        // wait_group(1) retires sparse, wait_group(0) retires dense.
        let mut s = AsyncCopyState::new();
        for _ in 0..4 {
            s.issue();
            s.commit_group(); // Bitmap + sparse values.
            s.issue();
            s.commit_group(); // Dense tile.
            assert_eq!(s.wait_group(1), 1, "sparse group must retire first");
            assert_eq!(s.wait_group(0), 1, "dense group retires second");
        }
        s.assert_drained();
        assert_eq!(s.groups_committed, 8);
        assert_eq!(s.waits, 8);
    }

    #[test]
    fn commit_group_f_tracks_groups_regardless_of_outcome() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut c = Counters::new();
        // No injector: plain commit, CommitFault::None.
        let mut s = AsyncCopyState::new();
        s.issue();
        assert_eq!(s.commit_group_f(&mut c, None, 7), CommitFault::None);
        assert_eq!(s.groups_in_flight(), 1);
        s.wait_group(0);
        s.assert_drained();
        assert_eq!(c.faults_injected, 0);
        // Drop-everything injector: the outcome reports the drop but the
        // group still occupies a commit slot and drains normally.
        let plan = FaultPlan {
            commit_drop_rate: 1.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let mut s = AsyncCopyState::new();
        s.issue();
        assert_eq!(
            s.commit_group_f(&mut c, Some(&inj), 7),
            CommitFault::Dropped
        );
        assert_eq!(s.groups_in_flight(), 1);
        s.wait_group(0);
        s.assert_drained();
        assert_eq!(c.faults_injected, 1);
    }

    #[test]
    fn wait_with_enough_slack_is_noop() {
        let mut s = AsyncCopyState::new();
        s.issue();
        s.commit_group();
        assert_eq!(s.wait_group(2), 0);
        s.wait_group(0);
    }

    #[test]
    #[should_panic(expected = "groups in flight")]
    fn undrained_block_panics() {
        let mut s = AsyncCopyState::new();
        s.issue();
        s.commit_group();
        s.assert_drained();
    }

    #[test]
    #[should_panic(expected = "uncommitted")]
    fn uncommitted_copies_panic() {
        let mut s = AsyncCopyState::new();
        s.issue();
        s.assert_drained();
    }
}
