//! Global-memory address space and coalescing model.
//!
//! The functional data plane of simulated kernels operates on ordinary Rust
//! slices; this module provides the *timing* data plane. Each device buffer
//! is assigned a virtual address range, and kernels report warp accesses as
//! per-lane `(address, size)` pairs. The model counts the 32-byte DRAM
//! sectors a warp access touches — the same granularity Nsight's
//! `dram__bytes_read` uses — so scattered gathers (cuSPARSE-style) are
//! charged more traffic than streaming `LDGSTS.128` loads.

use crate::counters::Counters;
use crate::fault::FaultInjector;

/// Size of a DRAM sector in bytes (fixed on NVIDIA hardware).
pub const SECTOR_BYTES: u64 = 32;

/// A virtual device address.
pub type VAddr = u64;

/// Bump allocator handing out non-overlapping virtual address ranges for
/// device buffers. Alignment is 256 B, matching `cudaMalloc`.
#[derive(Debug, Default)]
pub struct GlobalMemory {
    next: VAddr,
    allocated: u64,
}

impl GlobalMemory {
    /// Creates an empty address space.
    pub fn new() -> Self {
        GlobalMemory {
            next: 0x1000_0000,
            allocated: 0,
        }
    }

    /// Allocates `len` bytes and returns the base address.
    pub fn alloc(&mut self, len: usize) -> VAddr {
        let base = self.next;
        let aligned = (len as u64 + 255) & !255;
        self.next += aligned;
        self.allocated += aligned;
        base
    }

    /// Total bytes allocated so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }
}

/// Computes the number of distinct 32 B sectors touched by a set of
/// per-lane accesses of `bytes_per_lane` starting at each address.
/// `None` lanes are predicated off and generate no traffic.
pub fn sectors_touched(addrs: &[Option<VAddr>], bytes_per_lane: u32) -> u64 {
    // Allocation-free distinct count: this runs for every warp global
    // access. 32 lanes × ≤3 sectors each (width ≤ 64 B) bounds the
    // distinct set at 96; linear dedup over a stack array beats a heap
    // set at that size.
    assert!(bytes_per_lane <= 64, "unsupported width {bytes_per_lane}");
    let mut sectors = [0u64; 96];
    let mut count = 0usize;
    for addr in addrs.iter().flatten() {
        let start = addr / SECTOR_BYTES;
        let end = (addr + u64::from(bytes_per_lane) - 1) / SECTOR_BYTES;
        for s in start..=end {
            if !sectors[..count].contains(&s) {
                sectors[count] = s;
                count += 1;
            }
        }
    }
    count as u64
}

/// Records a warp-wide global *load* into `counters`: sector traffic,
/// useful bytes, and one load instruction.
pub fn warp_global_load(counters: &mut Counters, addrs: &[Option<VAddr>], bytes_per_lane: u32) {
    let active = addrs.iter().flatten().count() as u64;
    let sectors = sectors_touched(addrs, bytes_per_lane);
    counters.dram_read_bytes += sectors * SECTOR_BYTES;
    counters.useful_read_bytes += active * u64::from(bytes_per_lane);
    counters.global_load_insts += 1;
    counters.insts_issued += 1;
}

/// Records a warp-wide `LDGSTS` (cp.async global→shared copy). Traffic
/// accounting matches a regular load; the instruction class differs because
/// the pipeline model may overlap it.
pub fn warp_ldgsts(counters: &mut Counters, addrs: &[Option<VAddr>], bytes_per_lane: u32) {
    let active = addrs.iter().flatten().count() as u64;
    let sectors = sectors_touched(addrs, bytes_per_lane);
    counters.dram_read_bytes += sectors * SECTOR_BYTES;
    counters.useful_read_bytes += active * u64::from(bytes_per_lane);
    counters.ldgsts_insts += 1;
    counters.insts_issued += 1;
}

/// Records a warp-wide global *store*.
pub fn warp_global_store(counters: &mut Counters, addrs: &[Option<VAddr>], bytes_per_lane: u32) {
    let active = addrs.iter().flatten().count() as u64;
    let sectors = sectors_touched(addrs, bytes_per_lane);
    counters.dram_write_bytes += sectors * SECTOR_BYTES;
    counters.useful_write_bytes += active * u64::from(bytes_per_lane);
    counters.insts_issued += 1;
}

/// A bit flip struck by fault injection on a warp-wide load: flip bit
/// `bit` of the payload loaded by the `lane_sel`-th *active* lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadFault {
    /// Index among the access's active (non-predicated) lanes.
    pub lane_sel: usize,
    /// Bit position within that lane's `bytes_per_lane * 8`-bit payload.
    pub bit: u32,
}

/// Draws a fault decision for one warp global access. Keyed by the
/// lowest active address, so the decision depends only on *what* is
/// loaded — never on host thread schedule.
fn strike(
    counters: &mut Counters,
    addrs: &[Option<VAddr>],
    bytes_per_lane: u32,
    inj: &FaultInjector,
) -> Option<LoadFault> {
    let active = addrs.iter().flatten().count() as u32;
    let key = *addrs.iter().flatten().min()?;
    let per_lane = bytes_per_lane * 8;
    let flat = inj.bitflip(counters, key, active * per_lane)?;
    Some(LoadFault {
        lane_sel: (flat / per_lane) as usize,
        bit: flat % per_lane,
    })
}

/// Fault-aware variant of [`warp_global_load`]: identical counter
/// accounting, plus an injection draw when `fault` is `Some`. With
/// `None` this is exactly the golden path.
pub fn warp_global_load_f(
    counters: &mut Counters,
    addrs: &[Option<VAddr>],
    bytes_per_lane: u32,
    fault: Option<&FaultInjector>,
) -> Option<LoadFault> {
    warp_global_load(counters, addrs, bytes_per_lane);
    strike(counters, addrs, bytes_per_lane, fault?)
}

/// Fault-aware variant of [`warp_ldgsts`]: identical counter accounting,
/// plus an injection draw when `fault` is `Some`.
pub fn warp_ldgsts_f(
    counters: &mut Counters,
    addrs: &[Option<VAddr>],
    bytes_per_lane: u32,
    fault: Option<&FaultInjector>,
) -> Option<LoadFault> {
    warp_ldgsts(counters, addrs, bytes_per_lane);
    strike(counters, addrs, bytes_per_lane, fault?)
}

/// Convenience: builds the per-lane address array for a fully coalesced
/// warp access where lane `i` reads `bytes_per_lane` at
/// `base + i * bytes_per_lane`.
pub fn coalesced_addrs(base: VAddr, bytes_per_lane: u32) -> [Option<VAddr>; 32] {
    let mut out = [None; 32];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = Some(base + i as u64 * u64::from(bytes_per_lane));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_disjoint_and_aligned() {
        let mut gm = GlobalMemory::new();
        let a = gm.alloc(100);
        let b = gm.alloc(10);
        assert_eq!(a % 256, 0);
        assert_eq!(b % 256, 0);
        assert!(b >= a + 100);
        assert_eq!(gm.allocated_bytes(), 256 + 256);
    }

    #[test]
    fn coalesced_128bit_touches_16_sectors() {
        // 32 lanes x 16 B = 512 B contiguous = 16 sectors of 32 B.
        let addrs = coalesced_addrs(0x1000, 16);
        assert_eq!(sectors_touched(&addrs, 16), 16);
    }

    #[test]
    fn fully_scattered_touches_32_sectors() {
        // Each lane reads 4 B from its own cache line: 32 sectors.
        let mut addrs = [None; 32];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = Some(0x1000 + i as u64 * 1024);
        }
        assert_eq!(sectors_touched(&addrs, 4), 32);
    }

    #[test]
    fn predicated_lanes_are_free() {
        let mut addrs = [None; 32];
        addrs[0] = Some(0x2000);
        assert_eq!(sectors_touched(&addrs, 4), 1);
    }

    #[test]
    fn unaligned_access_spans_two_sectors() {
        let addrs = [Some(0x101Eu64)]; // 2 bytes before a sector boundary.
        assert_eq!(sectors_touched(&addrs, 4), 2);
    }

    #[test]
    fn load_counter_accounting() {
        let mut c = Counters::new();
        let addrs = coalesced_addrs(0, 16);
        warp_global_load(&mut c, &addrs, 16);
        assert_eq!(c.useful_read_bytes, 512);
        assert_eq!(c.dram_read_bytes, 512);
        assert_eq!(c.global_load_insts, 1);
        assert_eq!(c.read_coalescing(), 1.0);
    }

    #[test]
    fn scattered_load_has_poor_coalescing() {
        let mut c = Counters::new();
        let mut addrs = [None; 32];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = Some(i as u64 * 512);
        }
        warp_global_load(&mut c, &addrs, 2);
        assert_eq!(c.useful_read_bytes, 64);
        assert_eq!(c.dram_read_bytes, 32 * 32);
        assert!(c.read_coalescing() < 0.1);
    }

    #[test]
    fn fault_hook_none_is_golden_path() {
        use crate::fault::{FaultInjector, FaultPlan};
        let addrs = coalesced_addrs(0x4000, 16);
        let mut a = Counters::new();
        let mut b = Counters::new();
        warp_ldgsts(&mut a, &addrs, 16);
        assert_eq!(warp_ldgsts_f(&mut b, &addrs, 16, None), None);
        assert_eq!(a, b);
        // A zero-rate injector never strikes and leaves counters equal too.
        let inj = FaultInjector::new(FaultPlan::default());
        let mut c0 = Counters::new();
        assert_eq!(warp_global_load_f(&mut c0, &addrs, 16, Some(&inj)), None);
        let mut c1 = Counters::new();
        warp_global_load(&mut c1, &addrs, 16);
        assert_eq!(c0, c1);
    }

    #[test]
    fn fault_hook_rate_one_strikes_in_bounds() {
        use crate::fault::{FaultInjector, FaultPlan};
        let inj = FaultInjector::new(FaultPlan::uniform(5, 1.0));
        let mut c = Counters::new();
        for g in 0..32u64 {
            let addrs = coalesced_addrs(0x1_0000 + g * 512, 16);
            let hit = warp_ldgsts_f(&mut c, &addrs, 16, Some(&inj)).expect("rate 1.0 fires");
            assert!(hit.lane_sel < 32, "lane_sel within active lanes");
            assert!(hit.bit < 128, "bit within a 16 B payload");
        }
        assert_eq!(c.faults_injected, 32);
        // Deterministic: the same addresses re-draw the same faults.
        let mut c2 = Counters::new();
        let first = warp_ldgsts_f(&mut c2, &coalesced_addrs(0x1_0000, 16), 16, Some(&inj));
        let again = warp_ldgsts_f(&mut c2, &coalesced_addrs(0x1_0000, 16), 16, Some(&inj));
        assert_eq!(first, again);
    }

    #[test]
    fn store_counter_accounting() {
        let mut c = Counters::new();
        let addrs = coalesced_addrs(0, 4);
        warp_global_store(&mut c, &addrs, 4);
        assert_eq!(c.dram_write_bytes, 128);
        assert_eq!(c.useful_write_bytes, 128);
    }
}
