//! Software implementation of IEEE 754 binary16 ("half precision").
//!
//! The paper's kernels operate on FP16 weights and activations with FP32
//! accumulation inside the Tensor Core `mma` instruction. No external `half`
//! crate is used; conversions implement round-to-nearest-even, matching the
//! behaviour of the `cvt.rn.f16.f32` PTX instruction.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A 16-bit IEEE 754 binary16 floating-point value.
///
/// Stored as its raw bit pattern. Arithmetic is performed by converting to
/// `f32`, operating, and rounding back — the same semantics an FP16 ALU
/// with round-to-nearest-even produces for a single operation.
///
/// # Examples
///
/// ```
/// use gpu_sim::fp16::Half;
///
/// let a = Half::from_f32(1.5);
/// let b = Half::from_f32(2.25);
/// assert_eq!((a + b).to_f32(), 3.75);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Half(u16);

impl Half {
    /// Positive zero.
    pub const ZERO: Half = Half(0x0000);
    /// One.
    pub const ONE: Half = Half(0x3C00);
    /// Negative one.
    pub const NEG_ONE: Half = Half(0xBC00);
    /// Largest finite value (65504.0).
    pub const MAX: Half = Half(0x7BFF);
    /// Smallest finite value (-65504.0).
    pub const MIN: Half = Half(0xFBFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: Half = Half(0x0400);
    /// Positive infinity.
    pub const INFINITY: Half = Half(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: Half = Half(0xFC00);
    /// A canonical quiet NaN.
    pub const NAN: Half = Half(0x7E00);

    /// Creates a `Half` from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Half(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `Half` with round-to-nearest-even.
    ///
    /// Values above the FP16 finite range become infinities; subnormal
    /// results are produced exactly as the hardware conversion would.
    #[inline]
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN. Preserve NaN-ness with a quiet payload bit.
            return if mant == 0 {
                Half(sign | 0x7C00)
            } else {
                Half(sign | 0x7E00)
            };
        }

        // Re-bias the exponent from f32 (127) to f16 (15).
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow: round to infinity.
            return Half(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. Keep 10 bits of mantissa with RNE on the rest.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let half_mant = (mant >> 13) as u16;
            let round_bits = mant & 0x1FFF;
            let mut out = sign | half_exp | half_mant;
            // Round-to-nearest-even: round up on >half, or on ==half when odd.
            if round_bits > 0x1000 || (round_bits == 0x1000 && (half_mant & 1) == 1) {
                out = out.wrapping_add(1); // May carry into the exponent — that is correct.
            }
            return Half(out);
        }
        if unbiased >= -25 {
            // Subnormal range: the implicit leading 1 must be made explicit
            // and shifted right together with the mantissa.
            let full_mant = mant | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let half_mant = (full_mant >> shift) as u16;
            let round_mask = (1u32 << shift) - 1;
            let round_bits = full_mant & round_mask;
            let halfway = 1u32 << (shift - 1);
            let mut out = sign | half_mant;
            if round_bits > halfway || (round_bits == halfway && (half_mant & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return Half(out);
        }
        // Underflow to (signed) zero.
        Half(sign)
    }

    /// Converts this `Half` to `f32` exactly (every f16 is representable).
    ///
    /// This is a table lookup: the conversion is a pure function of the
    /// 16-bit pattern, so all 65536 results are precomputed at compile
    /// time (`F16_TO_F32`) and the hot path is one indexed load. The
    /// functional simulator calls this twice per simulated
    /// multiply-accumulate, which made the bit-level decode the single
    /// hottest operation in figure-scale sweeps.
    #[inline]
    pub fn to_f32(self) -> f32 {
        F16_TO_F32[usize::from(self.0)]
    }

    /// Bit-level `f16 → f32` conversion — the reference implementation
    /// the `F16_TO_F32` table is generated from. Kept public so tests
    /// can exhaustively verify the table against first principles.
    pub const fn to_f32_bitwise(self) -> f32 {
        f32::from_bits(f16_to_f32_bits(self.0))
    }

    /// Returns `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if the value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Returns `true` for both positive and negative zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & 0x7FFF) == 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        Half(self.0 & 0x7FFF)
    }
}

/// Bit-level widening of an f16 pattern to the equivalent f32 pattern.
/// `const` so the `F16_TO_F32` table can be built at compile time.
const fn f16_to_f32_bits(h: u16) -> u32 {
    let sign = (h as u32 & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1F) as i32;
    let mant = (h & 0x03FF) as u32;

    if exp == 0 {
        if mant == 0 {
            return sign; // Signed zero.
        }
        // Subnormal: value is mant × 2⁻²⁴. Normalise around the
        // mantissa's MSB (index p): value = 1.frac × 2^(p−24).
        let p = 31 - mant.leading_zeros(); // 0..=9.
        let e = (p as i32 - 24 + 127) as u32;
        let m = (mant << (23 - p)) & 0x007F_FFFF;
        return sign | (e << 23) | m;
    }
    if exp == 0x1F {
        return if mant == 0 {
            sign | 0x7F80_0000
        } else {
            sign | 0x7FC0_0000 | (mant << 13)
        };
    }
    let e = (exp - 15 + 127) as u32;
    sign | (e << 23) | (mant << 13)
}

/// Compile-time `f16 → f32` table, indexed by the raw f16 bit pattern.
/// 256 KiB of read-only data; every entry equals the bit-level
/// conversion (`all_patterns_match_bitwise_conversion` proves it).
static F16_TO_F32: [f32; 1 << 16] = {
    let mut table = [0.0f32; 1 << 16];
    let mut bits = 0usize;
    while bits < (1 << 16) {
        table[bits] = f32::from_bits(f16_to_f32_bits(bits as u16));
        bits += 1;
    }
    table
};

impl From<f32> for Half {
    fn from(v: f32) -> Self {
        Half::from_f32(v)
    }
}

impl From<Half> for f32 {
    fn from(v: Half) -> Self {
        v.to_f32()
    }
}

impl Add for Half {
    type Output = Half;
    fn add(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for Half {
    type Output = Half;
    fn sub(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for Half {
    type Output = Half;
    fn mul(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Neg for Half {
    type Output = Half;
    fn neg(self) -> Half {
        Half(self.0 ^ 0x8000)
    }
}

impl PartialOrd for Half {
    fn partial_cmp(&self, other: &Half) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}f16", self.to_f32())
    }
}

impl fmt::Display for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Packs two `Half` values into one 32-bit register image (`.f16x2`).
///
/// `lo` occupies bits 0..16, `hi` bits 16..32 — the layout Tensor Core
/// `mma` operands use for their `Ra`/`Rb` registers.
#[inline]
pub fn pack_f16x2(lo: Half, hi: Half) -> u32 {
    u32::from(lo.to_bits()) | (u32::from(hi.to_bits()) << 16)
}

/// Unpacks a `.f16x2` register image into `(lo, hi)` halves.
#[inline]
pub fn unpack_f16x2(reg: u32) -> (Half, Half) {
    (
        Half::from_bits((reg & 0xFFFF) as u16),
        Half::from_bits((reg >> 16) as u16),
    )
}

/// Unpacks a `.f16x2` register image straight to `(lo, hi)` as `f32` —
/// two `F16_TO_F32` lookups, the form the decode-once mma fragment
/// views consume.
#[inline]
pub fn unpack_f16x2_f32(reg: u32) -> (f32, f32) {
    (
        F16_TO_F32[(reg & 0xFFFF) as usize],
        F16_TO_F32[(reg >> 16) as usize],
    )
}

/// Converts a whole `Half` slice to `f32` in one flat LUT sweep —
/// `dst[i] = src[i].to_f32()` bit-for-bit, without per-element call
/// dispatch. The batch form the X-tile fill and the reference-product
/// band loops use. `dst.len()` must equal `src.len()`.
pub fn f16_to_f32_slice(src: &[Half], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    for (d, h) in dst.iter_mut().zip(src) {
        *d = F16_TO_F32[usize::from(h.0)];
    }
}

/// Allocating form of [`f16_to_f32_slice`].
pub fn f16_to_f32_vec(src: &[Half]) -> Vec<f32> {
    let mut out = vec![0.0f32; src.len()];
    f16_to_f32_slice(src, &mut out);
    out
}

/// Branch-free `f32 → f16` bit conversion, exactly equal to
/// [`Half::from_f32`] for every input pattern (pinned against the
/// reference in `branchless_matches_from_f32_at_lane_boundaries` and
/// `f32_to_f16_slice_matches_per_element`). All three result
/// lanes — normal/overflow, subnormal/underflow, NaN/Inf — are computed
/// unconditionally and selected by magnitude, so the per-element work is
/// a short fixed dependency chain with no data-dependent branches; this
/// is what lets [`f32_to_f16_slice`] convert generator-scale buffers at
/// memory speed.
#[inline]
fn f16_bits_from_f32_bits_rne(bits: u32) -> u16 {
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7FFF_FFFF;

    // Normal lane with RNE via carry arithmetic: adding `0x0FFF + lsb`
    // below the 13 dropped mantissa bits rounds half-to-even, carrying
    // into the exponent when the mantissa overflows (which is exactly
    // the correct promotion, including rounding up to infinity); the
    // `0x3800_0000` subtraction rebias-es the exponent from 127 to 15.
    // Saturates at the infinity encoding for finite overflow.
    let lsb = (abs >> 13) & 1;
    let rounded = abs.wrapping_add(0x0FFF + lsb);
    let normal = ((rounded.wrapping_sub(0x3800_0000)) >> 13).min(0x7C00) as u16;

    // Subnormal lane: explicit leading 1, variable shift, RNE on the
    // shifted-out remainder. The shift clamp keeps the expression
    // defined for every exponent; any shift ≥ 25 yields zero with no
    // round-up (the remainder is always below the halfway point), which
    // is precisely the underflow-to-signed-zero rule.
    let exp = abs >> 23;
    let shift = 126u32.wrapping_sub(exp).min(31);
    let full = (abs & 0x007F_FFFF) | 0x0080_0000;
    let base = full >> shift;
    let rem = full & ((1u32 << shift) - 1);
    let half = 1u32 << (shift.wrapping_sub(1)).min(31);
    let round_up = u32::from(rem > half || (rem == half && base & 1 == 1));
    let sub = (base + round_up) as u16;

    // NaN/Inf lane: infinity, or the quiet-NaN payload `from_f32` uses.
    let naninf = 0x7C00u16 | (u16::from(abs > 0x7F80_0000) << 9);

    let magnitude = if abs >= 0x7F80_0000 {
        naninf
    } else if abs >= 0x3880_0000 {
        normal
    } else {
        sub
    };
    sign | magnitude
}

/// Converts a whole `f32` slice to `Half` in one sweep —
/// `dst[i] = Half::from_f32(src[i])` bit-for-bit (same round-to-nearest-
/// even, same NaN quieting), without per-element call dispatch or
/// data-dependent branching (`f16_bits_from_f32_bits_rne`). The batch
/// form the chunked matrix generators use. `dst.len()` must equal
/// `src.len()`.
pub fn f32_to_f16_slice(src: &[f32], dst: &mut [Half]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 requirement was just checked at runtime.
        unsafe { f32_to_f16_slice_avx2(src, dst) };
        return;
    }
    f32_to_f16_slice_scalar(src, dst);
}

#[inline]
fn f32_to_f16_slice_scalar(src: &[f32], dst: &mut [Half]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = Half(f16_bits_from_f32_bits_rne(x.to_bits()));
    }
}

/// The same scalar loop compiled with AVX2 enabled so the compiler can
/// auto-vectorize the branch-free conversion eight lanes wide (variable
/// shifts and unsigned mins have no SSE2 encoding, which blocks
/// vectorization in the baseline build). Semantics are untouched — this
/// is the identical integer arithmetic per element, so the dispatch is
/// invisible to every bit-identity pin.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn f32_to_f16_slice_avx2(src: &[f32], dst: &mut [Half]) {
    f32_to_f16_slice_scalar(src, dst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Next f16 toward +∞ / −∞ in value order (sign-magnitude bits mapped
    /// to a contiguous integer line, −0 adjacent to +0).
    fn f16_ord(b: u16) -> i32 {
        if b & 0x8000 != 0 {
            -i32::from(b & 0x7FFF) - 1
        } else {
            i32::from(b)
        }
    }

    fn f16_unord(o: i32) -> Half {
        Half::from_bits(if o < 0 {
            0x8000 | ((-o - 1) as u16)
        } else {
            o as u16
        })
    }

    /// RNE oracle: `from_f32(v)` must be at least as close to `v` as both
    /// of its f16 neighbours, and on an exact halfway tie the chosen
    /// mantissa must be even.
    fn assert_nearest_even(v: f32) {
        let h = Half::from_f32(v);
        assert!(!h.is_nan(), "finite input must not produce NaN");
        if h.is_infinite() {
            // Overflow threshold: 65520 is halfway between MAX (65504)
            // and the next step; RNE sends it (and everything above) up.
            assert!(v.abs() >= 65520.0, "premature overflow for {v}");
            return;
        }
        let d = (f64::from(h.to_f32()) - f64::from(v)).abs();
        for n in [
            f16_unord(f16_ord(h.to_bits()) - 1),
            f16_unord(f16_ord(h.to_bits()) + 1),
        ] {
            if n.is_nan() || n.is_infinite() {
                continue;
            }
            let dn = (f64::from(n.to_f32()) - f64::from(v)).abs();
            assert!(
                d < dn || (d == dn && h.to_bits() & 1 == 0),
                "{v} -> {h:?} but neighbour {n:?} is closer (or wins the even tie)"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn from_f32_is_nearest_even_in_subnormal_range(
            mant in 0u32..0x0080_0000,
            unbiased in prop::sample::select(vec![-30i32, -26, -25, -24, -20, -16, -15, -14]),
            neg in prop::sample::select(vec![0u32, 1]),
        ) {
            // f32 inputs whose f16 image is subnormal, the smallest
            // normal, or an underflow to signed zero.
            let bits = (neg << 31) | (((unbiased + 127) as u32) << 23) | mant;
            assert_nearest_even(f32::from_bits(bits));
        }

        #[test]
        fn from_f32_is_nearest_even_in_normal_range(
            mant in 0u32..0x0080_0000,
            exp_off in 0u32..30,
            neg in prop::sample::select(vec![0u32, 1]),
        ) {
            // Unbiased f16-range exponents −14 ..= 15.
            let unbiased = exp_off as i32 - 14;
            let bits = (neg << 31) | (((unbiased + 127) as u32) << 23) | mant;
            assert_nearest_even(f32::from_bits(bits));
        }

        #[test]
        fn from_f32_overflows_to_signed_infinity(v in 65520.0f32..3.0e38) {
            prop_assert_eq!(Half::from_f32(v), Half::INFINITY);
            prop_assert_eq!(Half::from_f32(-v), Half::NEG_INFINITY);
        }

        #[test]
        fn from_f32_below_halfway_stays_finite(v in 0.0f32..65519.0) {
            prop_assert!(!Half::from_f32(v).is_infinite());
            prop_assert!(!Half::from_f32(-v).is_infinite());
        }

        #[test]
        fn from_f32_quiets_every_nan(
            payload in 1u32..0x0080_0000,
            neg in prop::sample::select(vec![0u32, 1]),
        ) {
            let v = f32::from_bits((neg << 31) | 0x7F80_0000 | payload);
            let h = Half::from_f32(v);
            prop_assert!(h.is_nan());
            prop_assert!(h.to_bits() & 0x0200 != 0, "quiet bit must be set");
            prop_assert!(h.to_f32().is_nan(), "NaN survives the return trip");
        }

        #[test]
        fn roundtrip_is_identity_for_non_nan_patterns(bits: u16) {
            let h = Half::from_bits(bits);
            if h.is_nan() {
                prop_assert!(Half::from_f32(h.to_f32()).is_nan());
            } else {
                prop_assert_eq!(Half::from_f32(h.to_f32()).to_bits(), bits);
            }
        }

        #[test]
        fn f32_to_f16_slice_matches_per_element(raw in prop::collection::vec(any::<u32>(), 0..64)) {
            // Arbitrary bit patterns, NaNs and infinities included.
            let src: Vec<f32> = raw.iter().map(|&b| f32::from_bits(b)).collect();
            let mut dst = vec![Half::ZERO; src.len()];
            f32_to_f16_slice(&src, &mut dst);
            for (&x, &h) in src.iter().zip(&dst) {
                prop_assert_eq!(h.to_bits(), Half::from_f32(x).to_bits());
            }
        }

        #[test]
        fn branchless_matches_from_f32_at_lane_boundaries(
            exp in 0u32..=255,
            mant in prop::sample::select(vec![
                0u32, 1, 2, 0x0FFF, 0x1000, 0x1001, 0x1FFF, 0x2000, 0x2FFF, 0x3000,
                0x3001, 0x7F_E000, 0x7F_EFFF, 0x7F_F000, 0x7F_F001, 0x7F_FFFF,
            ]),
            neg in prop::sample::select(vec![0u32, 1]),
        ) {
            // Every exponent × the mantissa patterns that straddle the
            // RNE rounding, carry, overflow, and quiet-NaN decisions.
            let bits = (neg << 31) | (exp << 23) | mant;
            prop_assert_eq!(
                f16_bits_from_f32_bits_rne(bits),
                Half::from_f32(f32::from_bits(bits)).to_bits(),
                "bits {bits:#010x}"
            );
        }
    }

    #[test]
    fn zero_roundtrip() {
        assert_eq!(Half::from_f32(0.0).to_bits(), 0);
        assert_eq!(Half::from_f32(-0.0).to_bits(), 0x8000);
        assert!(Half::ZERO.is_zero());
        assert!(Half::from_f32(-0.0).is_zero());
    }

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let v = i as f32;
            assert_eq!(Half::from_f32(v).to_f32(), v, "i={i}");
        }
    }

    #[test]
    fn powers_of_two_roundtrip() {
        for e in -14..=15 {
            let v = (2.0f32).powi(e);
            assert_eq!(Half::from_f32(v).to_f32(), v, "e={e}");
        }
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive subnormal is 2^-24.
        let tiny = (2.0f32).powi(-24);
        assert_eq!(Half::from_f32(tiny).to_f32(), tiny);
        let h = Half::from_bits(0x0001);
        assert_eq!(h.to_f32(), tiny);
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(Half::from_f32(70000.0).is_infinite());
        assert!(Half::from_f32(-70000.0).is_infinite());
        assert_eq!(Half::from_f32(f32::INFINITY), Half::INFINITY);
    }

    #[test]
    fn nan_propagates() {
        assert!(Half::from_f32(f32::NAN).is_nan());
        assert!(Half::NAN.to_f32().is_nan());
    }

    #[test]
    fn max_value() {
        assert_eq!(Half::MAX.to_f32(), 65504.0);
        assert_eq!(Half::from_f32(65504.0), Half::MAX);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next f16;
        // RNE keeps the even mantissa (1.0).
        let halfway = 1.0 + (2.0f32).powi(-11);
        assert_eq!(Half::from_f32(halfway).to_f32(), 1.0);
        // 1.0 + 3*2^-11 is halfway with an odd low bit -> rounds up.
        let halfway_odd = 1.0 + 3.0 * (2.0f32).powi(-11);
        let next2 = 1.0 + 2.0 * (2.0f32).powi(-10);
        assert_eq!(Half::from_f32(halfway_odd).to_f32(), next2);
    }

    #[test]
    fn arithmetic_matches_f32_then_round() {
        let a = Half::from_f32(0.1);
        let b = Half::from_f32(0.2);
        let s = a + b;
        assert_eq!(s, Half::from_f32(a.to_f32() + b.to_f32()));
    }

    #[test]
    fn neg_flips_sign_bit_only() {
        let a = Half::from_f32(1.5);
        assert_eq!((-a).to_f32(), -1.5);
        assert_eq!((-(-a)), a);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let lo = Half::from_f32(3.5);
        let hi = Half::from_f32(-0.625);
        let reg = pack_f16x2(lo, hi);
        let (l2, h2) = unpack_f16x2(reg);
        assert_eq!(l2, lo);
        assert_eq!(h2, hi);
    }

    #[test]
    fn all_bit_patterns_convert_and_back() {
        // Every finite f16 must roundtrip f16 -> f32 -> f16 exactly.
        for bits in 0u16..=u16::MAX {
            let h = Half::from_bits(bits);
            if h.is_nan() {
                assert!(Half::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    Half::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits={bits:#06x}"
                );
            }
        }
    }

    #[test]
    fn all_patterns_match_bitwise_conversion() {
        // The LUT behind `to_f32` must agree with the bit-level
        // conversion for every one of the 65536 f16 patterns, compared
        // at the bit level so NaN payloads and signed zeros count too.
        for bits in 0u16..=u16::MAX {
            let h = Half::from_bits(bits);
            assert_eq!(
                h.to_f32().to_bits(),
                h.to_f32_bitwise().to_bits(),
                "bits={bits:#06x}"
            );
        }
    }

    #[test]
    fn unpack_f32_matches_scalar_conversions() {
        for &(lo, hi) in &[(0u16, 0x3C00u16), (0x8001, 0x7BFF), (0xFC00, 0x7E01)] {
            let reg = pack_f16x2(Half::from_bits(lo), Half::from_bits(hi));
            let (a, b) = unpack_f16x2_f32(reg);
            assert_eq!(a.to_bits(), Half::from_bits(lo).to_f32().to_bits());
            assert_eq!(b.to_bits(), Half::from_bits(hi).to_f32().to_bits());
        }
    }

    #[test]
    fn ordering() {
        assert!(Half::from_f32(1.0) < Half::from_f32(2.0));
        assert!(Half::from_f32(-1.0) < Half::ZERO);
    }
}
