//! Software implementation of IEEE 754 binary16 ("half precision").
//!
//! The paper's kernels operate on FP16 weights and activations with FP32
//! accumulation inside the Tensor Core `mma` instruction. No external `half`
//! crate is used; conversions implement round-to-nearest-even, matching the
//! behaviour of the `cvt.rn.f16.f32` PTX instruction.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A 16-bit IEEE 754 binary16 floating-point value.
///
/// Stored as its raw bit pattern. Arithmetic is performed by converting to
/// `f32`, operating, and rounding back — the same semantics an FP16 ALU
/// with round-to-nearest-even produces for a single operation.
///
/// # Examples
///
/// ```
/// use gpu_sim::fp16::Half;
///
/// let a = Half::from_f32(1.5);
/// let b = Half::from_f32(2.25);
/// assert_eq!((a + b).to_f32(), 3.75);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Half(u16);

impl Half {
    /// Positive zero.
    pub const ZERO: Half = Half(0x0000);
    /// One.
    pub const ONE: Half = Half(0x3C00);
    /// Negative one.
    pub const NEG_ONE: Half = Half(0xBC00);
    /// Largest finite value (65504.0).
    pub const MAX: Half = Half(0x7BFF);
    /// Smallest finite value (-65504.0).
    pub const MIN: Half = Half(0xFBFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: Half = Half(0x0400);
    /// Positive infinity.
    pub const INFINITY: Half = Half(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: Half = Half(0xFC00);
    /// A canonical quiet NaN.
    pub const NAN: Half = Half(0x7E00);

    /// Creates a `Half` from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Half(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `Half` with round-to-nearest-even.
    ///
    /// Values above the FP16 finite range become infinities; subnormal
    /// results are produced exactly as the hardware conversion would.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN. Preserve NaN-ness with a quiet payload bit.
            return if mant == 0 {
                Half(sign | 0x7C00)
            } else {
                Half(sign | 0x7E00)
            };
        }

        // Re-bias the exponent from f32 (127) to f16 (15).
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow: round to infinity.
            return Half(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. Keep 10 bits of mantissa with RNE on the rest.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let half_mant = (mant >> 13) as u16;
            let round_bits = mant & 0x1FFF;
            let mut out = sign | half_exp | half_mant;
            // Round-to-nearest-even: round up on >half, or on ==half when odd.
            if round_bits > 0x1000 || (round_bits == 0x1000 && (half_mant & 1) == 1) {
                out = out.wrapping_add(1); // May carry into the exponent — that is correct.
            }
            return Half(out);
        }
        if unbiased >= -25 {
            // Subnormal range: the implicit leading 1 must be made explicit
            // and shifted right together with the mantissa.
            let full_mant = mant | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let half_mant = (full_mant >> shift) as u16;
            let round_mask = (1u32 << shift) - 1;
            let round_bits = full_mant & round_mask;
            let halfway = 1u32 << (shift - 1);
            let mut out = sign | half_mant;
            if round_bits > halfway || (round_bits == halfway && (half_mant & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return Half(out);
        }
        // Underflow to (signed) zero.
        Half(sign)
    }

    /// Converts this `Half` to `f32` exactly (every f16 is representable).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & 0x8000) << 16;
        let exp = i32::from((self.0 >> 10) & 0x1F);
        let mant = u32::from(self.0 & 0x03FF);

        let bits = match (exp, mant) {
            (0, 0) => sign,
            (0, _) => {
                // Subnormal: value is mant × 2⁻²⁴. Normalise around the
                // mantissa's MSB (index p): value = 1.frac × 2^(p−24).
                let p = 31 - mant.leading_zeros(); // 0..=9.
                let e = (p as i32 - 24 + 127) as u32;
                let m = (mant << (23 - p)) & 0x007F_FFFF;
                sign | (e << 23) | m
            }
            (0x1F, 0) => sign | 0x7F80_0000,
            (0x1F, _) => sign | 0x7FC0_0000 | (mant << 13),
            _ => {
                let e = (exp - 15 + 127) as u32;
                sign | (e << 23) | (mant << 13)
            }
        };
        f32::from_bits(bits)
    }

    /// Returns `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if the value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Returns `true` for both positive and negative zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & 0x7FFF) == 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        Half(self.0 & 0x7FFF)
    }
}

impl From<f32> for Half {
    fn from(v: f32) -> Self {
        Half::from_f32(v)
    }
}

impl From<Half> for f32 {
    fn from(v: Half) -> Self {
        v.to_f32()
    }
}

impl Add for Half {
    type Output = Half;
    fn add(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for Half {
    type Output = Half;
    fn sub(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for Half {
    type Output = Half;
    fn mul(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Neg for Half {
    type Output = Half;
    fn neg(self) -> Half {
        Half(self.0 ^ 0x8000)
    }
}

impl PartialOrd for Half {
    fn partial_cmp(&self, other: &Half) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}f16", self.to_f32())
    }
}

impl fmt::Display for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Packs two `Half` values into one 32-bit register image (`.f16x2`).
///
/// `lo` occupies bits 0..16, `hi` bits 16..32 — the layout Tensor Core
/// `mma` operands use for their `Ra`/`Rb` registers.
#[inline]
pub fn pack_f16x2(lo: Half, hi: Half) -> u32 {
    u32::from(lo.to_bits()) | (u32::from(hi.to_bits()) << 16)
}

/// Unpacks a `.f16x2` register image into `(lo, hi)` halves.
#[inline]
pub fn unpack_f16x2(reg: u32) -> (Half, Half) {
    (
        Half::from_bits((reg & 0xFFFF) as u16),
        Half::from_bits((reg >> 16) as u16),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_roundtrip() {
        assert_eq!(Half::from_f32(0.0).to_bits(), 0);
        assert_eq!(Half::from_f32(-0.0).to_bits(), 0x8000);
        assert!(Half::ZERO.is_zero());
        assert!(Half::from_f32(-0.0).is_zero());
    }

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let v = i as f32;
            assert_eq!(Half::from_f32(v).to_f32(), v, "i={i}");
        }
    }

    #[test]
    fn powers_of_two_roundtrip() {
        for e in -14..=15 {
            let v = (2.0f32).powi(e);
            assert_eq!(Half::from_f32(v).to_f32(), v, "e={e}");
        }
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive subnormal is 2^-24.
        let tiny = (2.0f32).powi(-24);
        assert_eq!(Half::from_f32(tiny).to_f32(), tiny);
        let h = Half::from_bits(0x0001);
        assert_eq!(h.to_f32(), tiny);
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(Half::from_f32(70000.0).is_infinite());
        assert!(Half::from_f32(-70000.0).is_infinite());
        assert_eq!(Half::from_f32(f32::INFINITY), Half::INFINITY);
    }

    #[test]
    fn nan_propagates() {
        assert!(Half::from_f32(f32::NAN).is_nan());
        assert!(Half::NAN.to_f32().is_nan());
    }

    #[test]
    fn max_value() {
        assert_eq!(Half::MAX.to_f32(), 65504.0);
        assert_eq!(Half::from_f32(65504.0), Half::MAX);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next f16;
        // RNE keeps the even mantissa (1.0).
        let halfway = 1.0 + (2.0f32).powi(-11);
        assert_eq!(Half::from_f32(halfway).to_f32(), 1.0);
        // 1.0 + 3*2^-11 is halfway with an odd low bit -> rounds up.
        let halfway_odd = 1.0 + 3.0 * (2.0f32).powi(-11);
        let next2 = 1.0 + 2.0 * (2.0f32).powi(-10);
        assert_eq!(Half::from_f32(halfway_odd).to_f32(), next2);
    }

    #[test]
    fn arithmetic_matches_f32_then_round() {
        let a = Half::from_f32(0.1);
        let b = Half::from_f32(0.2);
        let s = a + b;
        assert_eq!(s, Half::from_f32(a.to_f32() + b.to_f32()));
    }

    #[test]
    fn neg_flips_sign_bit_only() {
        let a = Half::from_f32(1.5);
        assert_eq!((-a).to_f32(), -1.5);
        assert_eq!((-(-a)), a);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let lo = Half::from_f32(3.5);
        let hi = Half::from_f32(-0.625);
        let reg = pack_f16x2(lo, hi);
        let (l2, h2) = unpack_f16x2(reg);
        assert_eq!(l2, lo);
        assert_eq!(h2, hi);
    }

    #[test]
    fn all_bit_patterns_convert_and_back() {
        // Every finite f16 must roundtrip f16 -> f32 -> f16 exactly.
        for bits in 0u16..=u16::MAX {
            let h = Half::from_bits(bits);
            if h.is_nan() {
                assert!(Half::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    Half::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits={bits:#06x}"
                );
            }
        }
    }

    #[test]
    fn ordering() {
        assert!(Half::from_f32(1.0) < Half::from_f32(2.0));
        assert!(Half::from_f32(-1.0) < Half::ZERO);
    }
}
