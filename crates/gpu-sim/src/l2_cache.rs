//! Functional set-associative L2 cache model.
//!
//! The timing layer uses two closed-form L2 heuristics: whole-buffer
//! residency ([`crate::timing::l2_effective_bytes`]) and the wave-level
//! panel-reuse window ([`crate::timing::panel_reread_factor`]). This
//! module provides the reference they are validated against: a real
//! set-associative cache with LRU replacement, simulated at 128-byte line
//! granularity. Tests replay the access patterns the kernels generate and
//! check the heuristics' predicted DRAM traffic against the simulated
//! miss traffic.

use std::collections::BTreeMap;

/// Cache line size in bytes (L2 lines on NVIDIA parts).
pub const LINE_BYTES: u64 = 128;

/// A set-associative, LRU cache model.
#[derive(Debug)]
pub struct L2Cache {
    sets: usize,
    ways: usize,
    /// Per set: `(tag, last_use)` entries, at most `ways`.
    lines: Vec<Vec<(u64, u64)>>,
    tick: u64,
    /// Accesses served from the cache.
    pub hits: u64,
    /// Accesses that went to DRAM.
    pub misses: u64,
}

impl L2Cache {
    /// Builds a cache of `capacity_bytes` with `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into whole sets.
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0);
        let lines_total = capacity_bytes / LINE_BYTES as usize;
        assert!(
            lines_total >= ways && lines_total.is_multiple_of(ways),
            "capacity must hold a whole number of sets"
        );
        let sets = lines_total / ways;
        L2Cache {
            sets,
            ways,
            lines: vec![Vec::new(); sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// A cache sized like the given fraction of a device's L2.
    pub fn for_spec(spec: &crate::spec::GpuSpec) -> Self {
        // 16-way, matching typical GPU L2 organisation.
        let cap = spec.l2_bytes / (16 * LINE_BYTES as usize) * (16 * LINE_BYTES as usize);
        L2Cache::new(cap, 16)
    }

    /// Touches byte address `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr / LINE_BYTES;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let entries = &mut self.lines[set];
        if let Some(e) = entries.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if entries.len() == self.ways {
            // Evict LRU.
            let (idx, _) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used))| *used)
                .expect("non-empty set");
            entries.swap_remove(idx);
        }
        entries.push((tag, self.tick));
        false
    }

    /// Touches a byte range, one access per line.
    pub fn access_range(&mut self, addr: u64, bytes: u64) {
        let first = addr / LINE_BYTES;
        let last = (addr + bytes.max(1) - 1) / LINE_BYTES;
        for l in first..=last {
            self.access(l * LINE_BYTES);
        }
    }

    /// DRAM bytes implied by the misses so far.
    pub fn miss_bytes(&self) -> u64 {
        self.misses * LINE_BYTES
    }

    /// Hit rate over all accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Replays a GEMM-style panel walk: blocks rasterised over an `m×n`
/// output grid in column-window order (window of `win` tiles), each block
/// streaming its W panel rows and X panel columns. Returns the simulated
/// DRAM bytes for the W operand. Used by heuristic-validation tests.
pub fn replay_weight_panel(
    cache: &mut L2Cache,
    m: usize,
    k: usize,
    n_tiles: usize,
    tile_m: usize,
    window: usize,
) -> u64 {
    // BTreeMap, not HashMap: the validation walk below iterates the
    // histogram, and a hash map would visit tiles in randomised order
    // (std's SipHash is seeded per process) — any output derived from
    // the iteration would differ run to run. Address order is
    // deterministic.
    let mut w_traffic: BTreeMap<usize, u64> = BTreeMap::new();
    let before = cache.misses;
    let m_tiles = m.div_ceil(tile_m);
    // Swizzled rasterisation: walk N tiles in windows, M-major inside.
    for n0 in (0..n_tiles).step_by(window.max(1)) {
        for mt in 0..m_tiles {
            for nt in n0..(n0 + window).min(n_tiles) {
                let _ = nt;
                // The block streams its W tile rows (tile_m × k × 2B).
                let base = (mt * tile_m * k * 2) as u64;
                cache.access_range(base, (tile_m * k * 2) as u64);
                *w_traffic.entry(mt).or_insert(0u64) += 1;
            }
        }
    }
    // Deterministic address-order validation: the swizzled walk must
    // still stream every M tile exactly once per N tile.
    for (&mt, &visits) in &w_traffic {
        debug_assert!(
            mt < m_tiles && visits == n_tiles as u64,
            "tile {mt}: {visits} visits, expected {n_tiles}"
        );
    }
    (cache.misses - before) * LINE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;
    use crate::timing::{l2_effective_bytes, panel_reread_factor, L2Reuse};

    #[test]
    fn cold_then_hot() {
        let mut c = L2Cache::new(1 << 20, 16);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(64)); // Same 128 B line.
        assert!(!c.access(128));
        assert_eq!(c.misses, 2);
        assert_eq!(c.hits, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 ways, 2 sets => 4 lines; fill one set 3 deep.
        let mut c = L2Cache::new(4 * LINE_BYTES as usize, 2);
        // Addresses mapping to set 0: lines 0, 2, 4 (sets = 2).
        assert!(!c.access(0));
        assert!(!c.access(2 * LINE_BYTES));
        assert!(!c.access(4 * LINE_BYTES)); // Evicts line 0.
        assert!(!c.access(0), "line 0 must have been evicted");
        assert!(c.access(4 * LINE_BYTES), "recently used line stays");
    }

    #[test]
    fn streaming_larger_than_capacity_never_hits_on_revisit() {
        let cap = 1 << 16; // 64 KiB.
        let mut c = L2Cache::new(cap, 16);
        for pass in 0..2 {
            for a in (0..(4 * cap as u64)).step_by(LINE_BYTES as usize) {
                let hit = c.access(a);
                if pass == 1 {
                    assert!(!hit, "thrashing stream must miss on pass 2");
                }
            }
        }
    }

    #[test]
    fn resident_buffer_hits_on_revisit() {
        let cap = 1 << 16;
        let mut c = L2Cache::new(cap, 16);
        let buf = cap as u64 / 2;
        c.access_range(0, buf);
        let misses_cold = c.misses;
        c.access_range(0, buf);
        assert_eq!(c.misses, misses_cold, "warm pass must be all hits");
    }

    #[test]
    fn l2_effective_bytes_matches_simulated_resident_buffer() {
        // The heuristic says: a buffer that fits in (0.8×) L2 pays
        // compulsory traffic only, however many times it is re-read.
        let spec = GpuSpec::rtx4090();
        let buffer: u64 = 8 << 20; // 8 MiB << 72 MiB L2.
        let rereads = 6u64;
        let mut cache = L2Cache::for_spec(&spec);
        for _ in 0..rereads {
            cache.access_range(0, buffer);
        }
        let simulated = cache.miss_bytes();
        let heuristic = l2_effective_bytes(
            &spec,
            &L2Reuse {
                buffer_bytes: buffer,
                requested_bytes: buffer * rereads,
            },
        );
        let rel = (simulated as f64 - heuristic as f64).abs() / heuristic as f64;
        assert!(rel < 0.01, "simulated {simulated} vs heuristic {heuristic}");
    }

    #[test]
    fn panel_reread_factor_brackets_simulated_traffic() {
        // W panel: M×K with K=2048, streamed per window of output tiles.
        // The simulated DRAM traffic must land within ~2x of the
        // heuristic's prediction (it is a first-order window model).
        let spec = GpuSpec::rtx4090();
        let (m, k) = (4096usize, 2048usize);
        let n_pad = 4096usize;
        let tile_n = 128usize;
        let n_tiles = n_pad / tile_n;
        let factor = panel_reread_factor(&spec, k, n_pad, tile_n);
        let predicted = (2 * m * k) as u64 * factor;

        let mut cache = L2Cache::for_spec(&spec);
        // Window matching the heuristic's derivation.
        let window_cols = ((spec.l2_bytes as f64 * 0.4) / (2.0 * k as f64)).max(512.0) as usize;
        let window_tiles = (window_cols / tile_n).max(1);
        let simulated = replay_weight_panel(&mut cache, m, k, n_tiles, 128, window_tiles);
        let ratio = simulated as f64 / predicted as f64;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "simulated {simulated} vs predicted {predicted} (ratio {ratio})"
        );
    }

    #[test]
    fn panel_replay_is_deterministic() {
        // Two fresh replays of the same walk must report identical DRAM
        // traffic — the visit histogram iterates in address order, never
        // in (process-seeded) hash order.
        let run = || {
            let mut cache = L2Cache::new(1 << 20, 16);
            replay_weight_panel(&mut cache, 1024, 512, 8, 128, 2)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_geometry_panics() {
        L2Cache::new(3 * LINE_BYTES as usize, 2);
    }
}
