//! Device bit-manipulation intrinsics.
//!
//! The SMBD decoder (paper §4.3.3, Algorithm 2) is built on two primitives:
//! `__popcll` (64-bit population count) and a *masked* popcount that counts
//! set bits strictly below a lane-dependent offset. These are one-cycle-class
//! integer ops on CUDA cores; the simulator mirrors them here so kernels and
//! the instruction-counting layer share one definition.

/// 64-bit population count — the CUDA `__popcll` intrinsic.
#[inline]
pub fn popc64(bitmap: u64) -> u32 {
    bitmap.count_ones()
}

/// Counts set bits of `bitmap` strictly below bit position `offset`.
///
/// This is the paper's `MaskedPopCount` (Algorithm 2) with the mask
/// `(1 << offset) - 1` generated from the caller-provided offset. For
/// SMBD Phase I the offset is `2 * lane_id`, so the count equals the
/// number of non-zero values stored before this thread's `a0` slot.
///
/// `offset == 64` is allowed and counts the entire bitmap.
#[inline]
pub fn masked_popc64(bitmap: u64, offset: u32) -> u32 {
    debug_assert!(offset <= 64, "offset {offset} out of range");
    if offset >= 64 {
        return bitmap.count_ones();
    }
    let mask = (1u64 << offset) - 1;
    (bitmap & mask).count_ones()
}

/// Tests whether bit `pos` of `bitmap` is set.
#[inline]
pub fn test_bit(bitmap: u64, pos: u32) -> bool {
    debug_assert!(pos < 64);
    (bitmap >> pos) & 1 == 1
}

/// Builds a 64-bit bitmap from an iterator of 64 booleans, bit `i` taken
/// from the `i`-th element. Used by format encoders.
pub fn bitmap_from_bools<I: IntoIterator<Item = bool>>(bits: I) -> u64 {
    let mut bm = 0u64;
    let mut n = 0u32;
    for (i, b) in bits.into_iter().enumerate() {
        assert!(i < 64, "more than 64 bits supplied");
        if b {
            bm |= 1u64 << i;
        }
        n += 1;
    }
    assert_eq!(n, 64, "exactly 64 bits required, got {n}");
    bm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popc_basics() {
        assert_eq!(popc64(0), 0);
        assert_eq!(popc64(u64::MAX), 64);
        assert_eq!(popc64(0b1011), 3);
    }

    #[test]
    fn masked_popc_zero_offset_counts_nothing() {
        assert_eq!(masked_popc64(u64::MAX, 0), 0);
    }

    #[test]
    fn masked_popc_full_offset_counts_all() {
        assert_eq!(masked_popc64(u64::MAX, 64), 64);
        assert_eq!(masked_popc64(0xF0F0, 64), 8);
    }

    #[test]
    fn masked_popc_matches_manual_count() {
        let bm = 0b1101_0110_1011u64;
        for off in 0..=12u32 {
            let manual = (0..off).filter(|&i| test_bit(bm, i)).count() as u32;
            assert_eq!(masked_popc64(bm, off), manual, "off={off}");
        }
    }

    #[test]
    fn masked_popc_lane_semantics() {
        // Paper Algorithm 2: lane l uses offset 2l. With an all-ones bitmap
        // lane 5 must see exactly 10 preceding non-zeros.
        assert_eq!(masked_popc64(u64::MAX, 2 * 5), 10);
    }

    #[test]
    fn bitmap_from_bools_roundtrip() {
        let bits: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let bm = bitmap_from_bools(bits.clone());
        for (i, b) in bits.iter().enumerate() {
            assert_eq!(test_bit(bm, i as u32), *b);
        }
    }

    #[test]
    #[should_panic(expected = "exactly 64 bits")]
    fn bitmap_from_bools_rejects_short_input() {
        bitmap_from_bools(vec![true; 63]);
    }
}
