//! # gpu-sim — warp-level GPU simulator substrate
//!
//! This crate is the hardware substitution for the SpInfer reproduction
//! (see the workspace `DESIGN.md`): a functional + analytical model of the
//! NVIDIA GPUs the paper evaluates on (RTX4090, A6000). It provides:
//!
//! * [`fp16`] — software IEEE binary16 with round-to-nearest-even.
//! * [`matrix`] — dense FP16 matrices, generators, and golden references.
//! * [`spec`] — device parameter sheets.
//! * [`bitops`] — `popc`/masked-popcount device intrinsics (Algorithm 2).
//! * [`tensor_core`] — fragment-exact `mma.m16n8k16` emulation.
//! * [`shared_memory`] — 32-bank conflict model from real addresses.
//! * [`global`] — DRAM sector/coalescing model from real addresses.
//! * [`async_copy`] — `cp.async` commit-group semantics.
//! * [`mod@occupancy`], [`timing`], [`kernel`], [`counters`] — the profiling
//!   and time-estimation layer (Nsight-style metrics).
//! * [`exec`] — host-side parallel execution engine (worker pool +
//!   sharded counters) for running simulations across host cores with
//!   bit-identical results.
//! * [`trace`] — deterministic span recording keyed by simulated time
//!   (the observability seam consumed by `spinfer-obs`).
//!
//! Kernels built on this substrate (in `spinfer-core` and
//! `spinfer-baselines`) compute bit-exact numerical results on the host
//! while recording the events the timing model converts into estimated
//! kernel time.

// Lane IDs and tile coordinates are semantic indices in GPU-style code;
// iterator rewrites of those loops obscure the hardware mapping.
#![allow(clippy::needless_range_loop)]

pub mod async_copy;
pub mod bitops;
pub mod counters;
pub mod exec;
pub mod fault;
pub mod fp16;
pub mod global;
pub mod kernel;
pub mod l2_cache;
pub mod matrix;
pub mod occupancy;
pub mod pipeline;
pub mod shared_memory;
pub mod spec;
pub mod tensor_core;
pub mod timing;
pub mod trace;

pub use counters::Counters;
pub use fp16::Half;
pub use kernel::{LaunchChain, LaunchResult};
pub use matrix::DenseMatrix;
pub use occupancy::{occupancy, BlockResources, Occupancy};
pub use spec::GpuSpec;
pub use timing::{KernelTiming, L2Reuse, LaunchShape, PipelineMode};
