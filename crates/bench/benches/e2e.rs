//! Criterion benchmarks over the end-to-end inference simulator — the
//! host cost of regenerating one Figure-13 cell per framework.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::GpuSpec;
use spinfer_llm::{footprint, simulate, Framework, InferenceConfig, ModelConfig};
use std::hint::black_box;

fn bench_simulate(c: &mut Criterion) {
    let spec = GpuSpec::rtx4090();
    let mut g = c.benchmark_group("simulate_opt13b_bs16_out256");
    for fw in Framework::all() {
        g.bench_function(fw.label(), |b| {
            let cfg = InferenceConfig {
                model: ModelConfig::opt_13b(),
                framework: fw,
                sparsity: 0.6,
                batch: 16,
                input_len: 64,
                output_len: 256,
                tp: 2,
            };
            b.iter(|| black_box(simulate(&spec, &cfg).tokens_per_sec))
        });
    }
    g.finish();
}

fn bench_memory_model(c: &mut Criterion) {
    c.bench_function("footprint_opt66b", |b| {
        b.iter(|| {
            black_box(footprint(
                &ModelConfig::opt_66b(),
                Framework::SpInfer,
                0.6,
                2,
                16,
                320,
            ))
        })
    });
}

criterion_group!(benches, bench_simulate, bench_memory_model);
criterion_main!(benches);
