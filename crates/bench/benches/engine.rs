//! Execution-engine benchmark: serial vs parallel `SpinferSpmm::run`
//! at the paper's hero shape (Figure 1: M/K/N = 28672/8192/16).
//!
//! This measures *host* wall-clock of the functional simulator, not
//! simulated GPU time — the two runs produce bit-identical counters
//! and output (see `tests/determinism.rs`); only the time to compute
//! them changes. On an N-core runner the parallel row should approach
//! N× the serial row for large N-independent block counts.
//!
//! Run with `cargo bench -p spinfer-bench --bench engine`. Respects
//! `SPINFER_JOBS` for the parallel row's worker count.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::exec;
use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};
use gpu_sim::GpuSpec;
use spinfer_bench::{HERO_K, HERO_M};
use spinfer_core::{SpinferSpmm, TcaBme};

fn engine(c: &mut Criterion) {
    let spec = GpuSpec::rtx4090();
    let w = random_sparse(HERO_M, HERO_K, 0.6, ValueDist::Uniform, 1);
    let x = random_dense(HERO_K, 16, ValueDist::Uniform, 2);
    let enc = TcaBme::encode(&w);
    let kernel = SpinferSpmm::new();

    let mut g = c.benchmark_group("engine");
    // Hero-scale functional runs cost seconds each; keep samples low.
    g.sample_size(3);
    g.bench_function("spinfer_run/serial", |b| {
        exec::set_jobs(1);
        b.iter(|| kernel.run(&spec, &enc, &x));
    });
    g.bench_function("spinfer_run/parallel", |b| {
        // Default resolution: SPINFER_JOBS, else all hardware threads.
        exec::set_jobs(0);
        b.iter(|| kernel.run(&spec, &enc, &x));
    });
    g.finish();
    exec::set_jobs(0);
}

criterion_group!(benches, engine);
criterion_main!(benches);
