//! Criterion benchmarks over the simulated kernels.
//!
//! Two kinds of measurements:
//!
//! * `estimate/*` — host-side cost of the analytic kernel estimators at
//!   the paper's hero shape (these are what the `fig*` harnesses sweep,
//!   so their speed bounds full-figure regeneration time);
//! * `functional/*` — the bit-exact simulated kernels (fragment-level
//!   Tensor Core emulation, SMBD decoding) at a reduced shape.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};
use gpu_sim::GpuSpec;
use spinfer_bench::{KernelKind, HERO_K, HERO_M};
use spinfer_core::{SpMMHandle, TcaBme};
use std::hint::black_box;

fn bench_estimates(c: &mut Criterion) {
    let spec = GpuSpec::rtx4090();
    let mut g = c.benchmark_group("estimate");
    for kind in [
        KernelKind::CublasTc,
        KernelKind::SpInfer,
        KernelKind::FlashLlm,
        KernelKind::SparTa,
        KernelKind::Sputnik,
        KernelKind::CuSparse,
        KernelKind::Smat,
    ] {
        g.bench_function(kind.label(), |b| {
            b.iter(|| black_box(kind.time_us(&spec, HERO_M, HERO_K, 16, 0.6)))
        });
    }
    g.finish();
}

fn bench_functional(c: &mut Criterion) {
    let spec = GpuSpec::rtx4090();
    let w = random_sparse(512, 512, 0.6, ValueDist::Uniform, 1);
    let x = random_dense(512, 16, ValueDist::Uniform, 2);
    let mut g = c.benchmark_group("functional");
    g.sample_size(10);
    g.bench_function("tca_bme_encode_512", |b| {
        b.iter(|| black_box(TcaBme::encode(&w)))
    });
    let handle = SpMMHandle::encode(&w);
    g.bench_function("spinfer_spmm_512x512x16", |b| {
        b.iter(|| black_box(handle.matmul(&spec, &x).time_us()))
    });
    g.bench_function("spinfer_spmm_decode_roundtrip", |b| {
        b.iter_batched(
            || handle.weights.clone(),
            |enc| black_box(enc.decode()),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_smbd(c: &mut Criterion) {
    use gpu_sim::Counters;
    use spinfer_core::smbd::decode_tctile;
    let w = random_sparse(16, 16, 0.5, ValueDist::Uniform, 3);
    let enc = TcaBme::encode(&w);
    let bitmaps: [u64; 4] = enc.bitmaps[0..4].try_into().unwrap();
    c.bench_function("smbd/decode_tctile", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            black_box(decode_tctile(&mut counters, &bitmaps, &enc.values, 0, 0))
        })
    });
}

criterion_group!(benches, bench_estimates, bench_functional, bench_smbd);
criterion_main!(benches);
