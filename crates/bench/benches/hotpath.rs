//! Microbenchmarks for the SpMM wall-clock hot path: the vectorized
//! `mma` MAC panels, the set-bit-sweep SMBD decode, the batched
//! FP16 → f32 LUT conversion, and the setup pipeline (weight
//! generation + encode) — each next to its retained scalar/serial
//! oracle, so a regression in either the fast path or the price of
//! keeping the oracle shows up here before it shows up in
//! `spinfer snapshot`.
//!
//! The `simd` feature selects the explicit-SIMD MAC panel; run both
//! ways to compare:
//!
//! ```text
//! cargo bench -p spinfer-bench --bench hotpath
//! cargo bench -p spinfer-bench --bench hotpath --features gpu-sim/simd
//! ```
//!
//! Setting `SPINFER_BENCH_SMOKE=1` drops to two samples per benchmark —
//! the CI smoke mode that only proves the harness runs.

use criterion::{criterion_main, Criterion};
use gpu_sim::fp16::{f16_to_f32_slice, Half};
use gpu_sim::matrix::{random_sparse, random_sparse_oracle, ValueDist};
use gpu_sim::tensor_core::{
    mma_m16n8k16_bslice, mma_m16n8k16_bslice_ntiles, mma_m16n8k16_bslice_scalar, mma_m16n8k16_f32,
    mma_m16n8k16_f32_scalar, simd_active, FragC, MAX_NTILES, MMA_K, MMA_M, MMA_N,
};
use gpu_sim::Counters;
use spinfer_core::smbd::{decode_bitmap_tile_scalar, decode_tctile_f32};
use spinfer_core::TcaBme;
use std::hint::black_box;

/// Deterministic pseudo-random f32 in [-1, 1) from SplitMix64.
fn mix(state: &mut u64) -> f32 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 23) as f32 - 1.0
}

fn a_tile(seed: u64) -> [[f32; MMA_K]; MMA_M] {
    let mut s = seed;
    let mut a = [[0.0f32; MMA_K]; MMA_M];
    for row in a.iter_mut() {
        for v in row.iter_mut() {
            *v = mix(&mut s);
        }
    }
    a
}

fn b_buf(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed;
    (0..len).map(|_| mix(&mut s)).collect()
}

fn bench_mma(c: &mut Criterion) {
    let a = a_tile(1);
    let b = b_buf(2, MMA_K * MMA_N);
    let mut b2 = [[0.0f32; MMA_N]; MMA_K];
    for (k, row) in b2.iter_mut().enumerate() {
        row.copy_from_slice(&b[k * MMA_N..(k + 1) * MMA_N]);
    }
    let mut g = c.benchmark_group(if simd_active() {
        "mma(simd)"
    } else {
        "mma(flat)"
    });
    g.bench_function("m16n8k16_f32", |bench| {
        let mut counters = Counters::new();
        let mut acc = FragC::zero();
        bench.iter(|| mma_m16n8k16_f32(&mut counters, black_box(&a), black_box(&b2), &mut acc));
    });
    g.bench_function("m16n8k16_f32_scalar", |bench| {
        let mut counters = Counters::new();
        let mut acc = FragC::zero();
        bench.iter(|| {
            mma_m16n8k16_f32_scalar(&mut counters, black_box(&a), black_box(&b2), &mut acc)
        });
    });

    // The bslice pair at the SpMM launch's widest tile: ld spans the
    // full 128-column X window the batched call sweeps in one pass.
    let ld = MAX_NTILES * MMA_N;
    let bw = b_buf(3, MMA_K * ld);
    g.bench_function("m16n8k16_bslice", |bench| {
        let mut counters = Counters::new();
        let mut acc = FragC::zero();
        bench.iter(|| {
            mma_m16n8k16_bslice(&mut counters, black_box(&a), black_box(&bw), ld, &mut acc)
        });
    });
    g.bench_function("m16n8k16_bslice_scalar", |bench| {
        let mut counters = Counters::new();
        let mut acc = FragC::zero();
        bench.iter(|| {
            mma_m16n8k16_bslice_scalar(&mut counters, black_box(&a), black_box(&bw), ld, &mut acc)
        });
    });
    g.bench_function("bslice_ntiles16_batched", |bench| {
        let mut counters = Counters::new();
        let mut accs = vec![FragC::zero(); MAX_NTILES];
        bench.iter(|| {
            mma_m16n8k16_bslice_ntiles(&mut counters, black_box(&a), black_box(&bw), ld, &mut accs)
        });
    });
    g.bench_function("bslice_ntiles16_per_tile", |bench| {
        let mut counters = Counters::new();
        let mut accs = vec![FragC::zero(); MAX_NTILES];
        bench.iter(|| {
            for (j, acc) in accs.iter_mut().enumerate() {
                mma_m16n8k16_bslice(
                    &mut counters,
                    black_box(&a),
                    black_box(&bw[j * MMA_N..]),
                    ld,
                    acc,
                );
            }
        });
    });
    g.finish();
}

fn bench_smbd(c: &mut Criterion) {
    let w = random_sparse(16, 16, 0.6, ValueDist::Uniform, 4);
    let enc = TcaBme::encode(&w);
    let bitmaps: [u64; 4] = enc.bitmaps[0..4].try_into().unwrap();
    let mut g = c.benchmark_group("smbd");
    g.bench_function("decode_tctile_f32_sweep", |bench| {
        let mut counters = Counters::new();
        bench.iter(|| {
            black_box(decode_tctile_f32(
                &mut counters,
                &bitmaps,
                &enc.values,
                0,
                0,
            ))
        });
    });
    g.bench_function("decode_tctile_scalar_oracle", |bench| {
        let mut counters = Counters::new();
        bench.iter(|| {
            let mut offset = 0usize;
            for &bm in &bitmaps {
                let regs =
                    decode_bitmap_tile_scalar(&mut counters, bm, &enc.values, offset, 0, None, 0)
                        .expect("in bounds");
                black_box(regs);
                offset += bm.count_ones() as usize;
            }
        });
    });
    g.finish();
}

fn bench_fp16(c: &mut Criterion) {
    // One GroupTile column of X at the hero shape: 64 rows × 16 cols.
    let src: Vec<Half> = (0..1024)
        .map(|i| Half::from_f32(i as f32 * 0.125))
        .collect();
    let mut dst = vec![0.0f32; src.len()];
    let mut g = c.benchmark_group("fp16");
    g.bench_function("f16_to_f32_slice_1k", |bench| {
        bench.iter(|| f16_to_f32_slice(black_box(&src), black_box(&mut dst)));
    });
    g.bench_function("f16_to_f32_per_element_1k", |bench| {
        bench.iter(|| {
            for (d, h) in dst.iter_mut().zip(black_box(&src)) {
                *d = h.to_f32();
            }
        });
    });
    g.finish();
}

/// Setup-pipeline benchmarks: weight generation and the TCA-BME /
/// CSR encoders, each fast path next to its retained serial oracle —
/// the host wall-clock the hero `generate+encode` budget gates at
/// full scale (`spinfer snapshot --budget`), measured here at a shape
/// small enough for per-PR iteration.
fn bench_setup(c: &mut Criterion) {
    const M: usize = 1024;
    const K: usize = 1024;
    const S: f64 = 0.6;
    let w = random_sparse(M, K, S, ValueDist::Uniform, 42);
    let mut g = c.benchmark_group("setup");
    g.bench_function("generate_1kx1k", |bench| {
        bench.iter(|| black_box(random_sparse(M, K, S, ValueDist::Uniform, 42)));
    });
    g.bench_function("generate_1kx1k_oracle", |bench| {
        bench.iter(|| black_box(random_sparse_oracle(M, K, S, ValueDist::Uniform, 42)));
    });
    g.bench_function("encode_tca_bme_1kx1k", |bench| {
        bench.iter(|| black_box(TcaBme::encode(black_box(&w))));
    });
    g.bench_function("encode_tca_bme_1kx1k_serial_oracle", |bench| {
        bench.iter(|| {
            black_box(TcaBme::encode_serial_oracle(
                black_box(&w),
                spinfer_core::TcaBmeConfig::default(),
            ))
        });
    });
    g.bench_function("encode_csr_1kx1k", |bench| {
        bench.iter(|| black_box(spinfer_baselines::Csr::encode(black_box(&w))));
    });
    g.bench_function("gtile_checksums_1kx1k", |bench| {
        let enc = TcaBme::encode(&w);
        bench.iter(|| black_box(enc.gtile_checksums()));
    });
    g.finish();
}

fn configured() -> Criterion {
    let mut c = Criterion::default();
    // CI smoke mode: prove the harness runs without paying for samples.
    if std::env::var_os("SPINFER_BENCH_SMOKE").is_some() {
        c.sample_size(2);
    } else {
        c.sample_size(200);
    }
    c
}

pub fn benches() {
    let mut criterion = configured();
    bench_mma(&mut criterion);
    bench_smbd(&mut criterion);
    bench_fp16(&mut criterion);
    bench_setup(&mut criterion);
}
criterion_main!(benches);
