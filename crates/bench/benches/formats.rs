//! Criterion benchmarks over the sparse format encoders (host-side
//! preprocessing cost — what a serving system pays once per checkpoint).

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::matrix::{random_sparse, ValueDist};
use spinfer_baselines::formats::{Bcsr, Csr, SpartaFormat, TiledCsl};
use spinfer_core::TcaBme;
use std::hint::black_box;

fn bench_encoders(c: &mut Criterion) {
    let w = random_sparse(1024, 1024, 0.6, ValueDist::Uniform, 1);
    let mut g = c.benchmark_group("encode_1024x1024_s60");
    g.sample_size(10);
    g.bench_function("tca_bme", |b| b.iter(|| black_box(TcaBme::encode(&w))));
    g.bench_function("csr", |b| b.iter(|| black_box(Csr::encode(&w))));
    g.bench_function("tiled_csl", |b| b.iter(|| black_box(TiledCsl::encode(&w))));
    g.bench_function("sparta", |b| b.iter(|| black_box(SpartaFormat::encode(&w))));
    g.bench_function("bcsr", |b| b.iter(|| black_box(Bcsr::encode(&w))));
    g.finish();
}

fn bench_storage_math(c: &mut Criterion) {
    use spinfer_roofline::{compression_ratio, FormatKind};
    c.bench_function("compression_ratio_all_formats", |b| {
        b.iter(|| {
            for f in FormatKind::all() {
                for s in [0.3, 0.5, 0.7] {
                    black_box(compression_ratio(f, 4096, 4096, s));
                }
            }
        })
    });
}

criterion_group!(benches, bench_encoders, bench_storage_math);
criterion_main!(benches);
