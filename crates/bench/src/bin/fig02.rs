//! Figure 2: runtime and memory breakdown of dense OPT-13B inference
//! (FasterTransformer, 2×RTX4090, batch 16, output length 256).

use gpu_sim::GpuSpec;
use spinfer_bench::{render_table, save_csv};
use spinfer_llm::{simulate, Framework, InferenceConfig, ModelConfig};

fn main() {
    let spec = GpuSpec::rtx4090();
    let cfg = InferenceConfig {
        model: ModelConfig::opt_13b(),
        framework: Framework::FasterTransformer,
        sparsity: 0.0,
        batch: 16,
        input_len: 64,
        output_len: 256,
        tp: 2,
    };
    let r = simulate(&spec, &cfg);
    let b = r.breakdown;
    let t = b.total();
    println!(
        "Figure 2 — OPT-13B on 2x{} (FT, BS=16, out=256)\n",
        spec.name
    );

    let headers = ["component", "seconds", "share"];
    let time_rows = vec![
        vec!["GEMM".into(), format!("{:.3}", b.linear), pct(b.linear / t)],
        vec!["MHA".into(), format!("{:.3}", b.mha), pct(b.mha / t)],
        vec!["COMM".into(), format!("{:.3}", b.comm), pct(b.comm / t)],
        vec!["Other".into(), format!("{:.3}", b.other), pct(b.other / t)],
    ];
    println!("Runtime breakdown:");
    println!("{}", render_table(&headers, &time_rows));
    save_csv("fig02_runtime", &headers, &time_rows);

    let m = r.memory;
    let total = m.total() as f64;
    let gib = |x: u64| format!("{:.2}", x as f64 / (1u64 << 30) as f64);
    let mem_headers = ["component", "GiB/GPU", "share"];
    let mem_rows = vec![
        vec![
            "Weights".into(),
            gib(m.weights + m.embeddings),
            pct((m.weights + m.embeddings) as f64 / total),
        ],
        vec![
            "KV cache".into(),
            gib(m.kv_cache),
            pct(m.kv_cache as f64 / total),
        ],
        vec![
            "Activations".into(),
            gib(m.activations),
            pct(m.activations as f64 / total),
        ],
        vec![
            "Runtime".into(),
            gib(m.runtime),
            pct(m.runtime as f64 / total),
        ],
    ];
    println!("Memory breakdown:");
    println!("{}", render_table(&mem_headers, &mem_rows));
    save_csv("fig02_memory", &mem_headers, &mem_rows);
    println!("Paper shape: weights ~87.6% of memory, GEMM ~61.6% of runtime.");
}

fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}
