//! Serving-level sweep (beyond the paper): continuous-batching load vs
//! latency/throughput per framework — the deployment consequence of the
//! paper's kernel and memory wins.

use gpu_sim::GpuSpec;
use spinfer_bench::{render_table, save_csv};
use spinfer_llm::serving::{serve, LengthMix, ServingConfig};
use spinfer_llm::{Framework, ModelConfig};

fn main() {
    let spec = GpuSpec::rtx4090();
    let headers = [
        "framework",
        "arrival rps",
        "served rps",
        "tokens/s",
        "mean batch",
        "p95 latency (s)",
    ];
    let mut rows = Vec::new();
    for fw in Framework::all() {
        for &rate in &[0.5f64, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let cfg = ServingConfig {
                model: ModelConfig::opt_13b(),
                framework: fw,
                sparsity: 0.6,
                tp: 2,
                max_batch: 32,
                arrival_rps: rate,
                input_len: 64,
                output_len: 128,
                duration_sec: 120.0,
                mix: LengthMix::Uniform,
            };
            let r = serve(&spec, &cfg);
            rows.push(vec![
                fw.label().to_string(),
                format!("{rate:.1}"),
                format!("{:.2}", r.throughput_rps),
                format!("{:.0}", r.tokens_per_sec),
                format!("{:.1}", r.mean_batch),
                format!("{:.2}", r.p95_latency_sec),
            ]);
        }
    }
    println!(
        "Continuous-batching serving sweep — OPT-13B on 2x{}, 60% sparsity,\n\
         in=64 out=128, iteration-level batching capped at 32:\n",
        spec.name
    );
    println!("{}", render_table(&headers, &rows));
    println!(
        "Reading: each framework tracks the offered load until its knee, \
         then saturates; SpInfer's knee sits at the highest rate (faster \
         steps and more KV headroom), and its p95 latency stays flat \
         longest."
    );
    save_csv("serving_sweep", &headers, &rows);
}
