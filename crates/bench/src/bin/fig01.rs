//! Figure 1: execution time of unstructured SpMM implementations vs
//! cuBLAS at M/K/N = 28672/8192/16 across sparsity levels.

use gpu_sim::GpuSpec;
use spinfer_bench::{render_table, save_csv, KernelKind, HERO_K, HERO_M};

fn main() {
    let spec = GpuSpec::rtx4090();
    let n = 16;
    let kernels = [
        KernelKind::CublasTc,
        KernelKind::CuSparse,
        KernelKind::Sputnik,
        KernelKind::SparTa,
        KernelKind::FlashLlm,
        KernelKind::SpInfer,
    ];
    let headers: Vec<&str> = std::iter::once("sparsity")
        .chain(kernels.iter().map(|k| k.label()))
        .collect();
    let mut rows = Vec::new();
    for s in [0.4, 0.5, 0.6, 0.7, 0.8] {
        let mut row = vec![format!("{:.0}%", s * 100.0)];
        for kind in kernels {
            row.push(format!("{:.1}", kind.time_us(&spec, HERO_M, HERO_K, n, s)));
        }
        rows.push(row);
    }
    println!(
        "Figure 1 — SpMM execution time (us) on {}, M/K/N={}/{}/{}",
        spec.name, HERO_M, HERO_K, n
    );
    println!("{}", render_table(&headers, &rows));
    println!(
        "Paper shape: only SpInfer beats cuBLAS at <=50% sparsity; \
         Flash-LLM crosses over near 60-70%; cuSPARSE is an order of \
         magnitude off."
    );
    save_csv("fig01", &headers, &rows);
}
