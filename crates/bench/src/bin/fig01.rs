//! Figure 1: execution time of unstructured SpMM implementations vs
//! cuBLAS at M/K/N = 28672/8192/16 across sparsity levels.

use gpu_sim::GpuSpec;
use spinfer_bench::sweep::{self, SweepPoint};
use spinfer_bench::{render_table, save_csv, KernelKind, HERO_K, HERO_M};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    sweep::configure_jobs(&args);
    let spec = GpuSpec::rtx4090();
    let n = 16;
    let kernels = [
        KernelKind::CublasTc,
        KernelKind::CuSparse,
        KernelKind::Sputnik,
        KernelKind::SparTa,
        KernelKind::FlashLlm,
        KernelKind::SpInfer,
    ];
    let headers: Vec<&str> = std::iter::once("sparsity")
        .chain(kernels.iter().map(|k| k.label()))
        .collect();
    let sparsities = [0.4, 0.5, 0.6, 0.7, 0.8];

    // Fan the (sparsity × kernel) grid across host cores; times come
    // back in point order, so the assembled table is identical to the
    // serial loop at any job count.
    let points: Vec<SweepPoint> = sparsities
        .iter()
        .flat_map(|&s| {
            kernels.iter().map(move |&kernel| SweepPoint {
                m: HERO_M,
                k: HERO_K,
                n,
                sparsity: s,
                kernel,
            })
        })
        .collect();
    let times = sweep::run_grid(&spec, points);

    let rows: Vec<Vec<String>> = sparsities
        .iter()
        .zip(times.chunks(kernels.len()))
        .map(|(s, kernel_times)| {
            std::iter::once(format!("{:.0}%", s * 100.0))
                .chain(kernel_times.iter().map(|t| format!("{t:.1}")))
                .collect()
        })
        .collect();
    println!(
        "Figure 1 — SpMM execution time (us) on {}, M/K/N={}/{}/{}",
        spec.name, HERO_M, HERO_K, n
    );
    println!("{}", render_table(&headers, &rows));
    println!(
        "Paper shape: only SpInfer beats cuBLAS at <=50% sparsity; \
         Flash-LLM crosses over near 60-70%; cuSPARSE is an order of \
         magnitude off."
    );
    save_csv("fig01", &headers, &rows);
}
