//! Figure 10: kernel speedups over cuBLAS_TC across model-derived weight
//! shapes, batch sizes N ∈ {8, 16, 32} and sparsity ∈ {40..70%}, on both
//! RTX4090 and A6000.

use gpu_sim::GpuSpec;
use spinfer_bench::{figure10_shapes, geomean, render_table, save_csv, sweep, KernelKind};
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    sweep::configure_jobs(&args);
    for spec in [GpuSpec::rtx4090(), GpuSpec::a6000()] {
        run_platform(&spec);
    }
}

/// One (shape, N, sparsity) grid cell: every sparse kernel's speedup
/// over the dense baseline.
struct Cell {
    row: Vec<String>,
    speedups: Vec<f64>,
    sparsity_pct: u32,
}

fn run_platform(spec: &GpuSpec) {
    let kernels = KernelKind::figure10_roster();
    let sparse_kernels: Vec<KernelKind> = kernels[1..].to_vec();
    let headers: Vec<&str> = ["model", "M", "K", "N", "sparsity"]
        .into_iter()
        .chain(sparse_kernels.iter().map(|k| k.label()))
        .collect();

    // Fan (shape × N × sparsity) cells across host cores. Each cell is
    // a pure function of its point, and cells come back in grid order,
    // so tables and aggregates are identical to the serial loop at any
    // job count.
    let mut grid = Vec::new();
    for shape in figure10_shapes() {
        for &n in &[8usize, 16, 32] {
            for &sp in &[40u32, 50, 60, 70] {
                grid.push((shape, n, sp));
            }
        }
    }
    let cells = sweep::par_points(grid, |(shape, n, sp)| {
        let base = KernelKind::CublasTc.time_us(spec, shape.m, shape.k, n, 0.5);
        let s = f64::from(sp) / 100.0;
        let mut row = vec![
            shape.model.to_string(),
            shape.m.to_string(),
            shape.k.to_string(),
            n.to_string(),
            format!("{sp}%"),
        ];
        let mut speedups = Vec::with_capacity(sparse_kernels.len());
        for kind in &sparse_kernels {
            let t = kind.time_us(spec, shape.m, shape.k, n, s);
            let speedup = base / t;
            row.push(format!("{speedup:.2}"));
            speedups.push(speedup);
        }
        Cell {
            row,
            speedups,
            sparsity_pct: sp,
        }
    });

    let mut rows = Vec::new();
    let mut per_kernel: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut per_sparsity: HashMap<u32, Vec<f64>> = HashMap::new();
    let mut spinfer_wins = 0usize;
    let mut cases = 0usize;
    for cell in cells {
        for (kind, &speedup) in sparse_kernels.iter().zip(&cell.speedups) {
            per_kernel.entry(kind.label()).or_default().push(speedup);
            if *kind == KernelKind::SpInfer {
                per_sparsity
                    .entry(cell.sparsity_pct)
                    .or_default()
                    .push(speedup);
                cases += 1;
                if speedup > 1.0 {
                    spinfer_wins += 1;
                }
            }
        }
        rows.push(cell.row);
    }

    println!(
        "Figure 10 — speedup over cuBLAS_TC on {} ({} shapes x N x sparsity)",
        spec.name,
        figure10_shapes().len()
    );
    println!("{}", render_table(&headers, &rows));
    println!("Geomean speedup vs cuBLAS_TC on {}:", spec.name);
    for kind in &sparse_kernels {
        let g = geomean(&per_kernel[kind.label()]);
        println!("  {:>10}: {:.2}x", kind.label(), g);
    }
    println!("SpInfer geomean by sparsity:");
    for sp in [40u32, 50, 60, 70] {
        println!("  {:>3}%: {:.2}x", sp, geomean(&per_sparsity[&sp]));
    }
    println!(
        "SpInfer beats cuBLAS in {}/{} cases ({:.1}%)\n",
        spinfer_wins,
        cases,
        100.0 * spinfer_wins as f64 / cases as f64
    );
    save_csv(
        &format!("fig10_{}", spec.name.to_lowercase()),
        &headers,
        &rows,
    );
}
