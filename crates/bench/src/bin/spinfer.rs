//! `spinfer` — command-line front end for the reproduction.
//!
//! ```text
//! spinfer encode <M> <K> <sparsity> [--out FILE]   encode random weights to TCA-BME
//! spinfer inspect <FILE>                            show stats of an encoded file
//! spinfer bench <M> <K> <N> <sparsity> [--gpu G] [--functional]
//!               [--metrics FILE]
//!                                                   kernel roster comparison;
//!                                                   --metrics (functional only)
//!                                                   writes a metrics snapshot
//!                                                   with the setup-phase
//!                                                   generate/encode wall-clock
//!                                                   and cache counters
//! spinfer tune <M> <K> <N> <sparsity> [--gpu G]     autotune the SpInfer kernel
//! spinfer serve <MODEL> <FW> <TP> <BATCH> <OUT>     end-to-end serving simulation
//! spinfer generate [TOKENS]                         run the tiny functional model
//! spinfer snapshot [M K N sparsity] [--gpu G] [--out FILE] [--budget FILE]
//!                                                   perf snapshot → BENCH_kernels.json;
//!                                                   overwriting --out FILE appends the
//!                                                   old measurement to its history;
//!                                                   --budget fails if the new jobs-1
//!                                                   wall-clock exceeds the baseline
//!                                                   file's by more than 25%, or the
//!                                                   generate/encode wall-clock by
//!                                                   more than 50%
//! spinfer faults <M> <K> <N> <sparsity> [--rate R] [--seed S] [--gpu G]
//!                                                   fault-injection smoke: run the
//!                                                   checked kernel under a seeded
//!                                                   fault plan; nonzero exit unless
//!                                                   faults were detected, handled,
//!                                                   and the output stayed correct
//! spinfer sweep <M> <K> <N> [--checkpoint FILE] [--resume] [--panic-at IDX]
//!               [--trace-dir DIR] [--gpu G]
//!                                                   hardened analytic sweep with
//!                                                   per-point panic isolation and a
//!                                                   JSONL checkpoint; --trace-dir
//!                                                   writes a Chrome trace + metrics
//!                                                   snapshot of the grid
//! spinfer trace <M> <K> <N> <sparsity> [--gpu G] [--out FILE]
//!               [--kernel NAME]
//!                                                   run a functional kernel (default
//!                                                   SpInfer; any registry name, e.g.
//!                                                   Flash-LLM or cuSPARSE) with span
//!                                                   recording on: writes a
//!                                                   Chrome-trace JSON (load it at
//!                                                   ui.perfetto.dev) and prints a
//!                                                   per-phase p50/p95/p99 breakdown
//! spinfer spec [--model M] [--kernel NAME] [--sparsity S] [--tp N]
//!              [--batch B] [--rps R] [--duration S] [--input N] [--output N]
//!              [--shapes LIST] [--rates LIST] [--draft-frac F] [--share F]
//!              [--seed S] [--gpu G] [--json] [--trace-dir DIR]
//!                                                   speculative-decoding sweep:
//!                                                   serve the same workload
//!                                                   incrementally and with
//!                                                   token-tree verification for
//!                                                   every (tree shape ×
//!                                                   acceptance rate) pair, e.g.
//!                                                   --shapes w1d4,w2d3b8
//!                                                   --rates 0.0,0.5,0.8; the
//!                                                   verify step folds all
//!                                                   candidates into one wide-N
//!                                                   launch priced by --kernel
//!                                                   (any registry name);
//!                                                   --trace-dir writes
//!                                                   draft/verify/accept spans +
//!                                                   a metrics snapshot,
//!                                                   byte-identical at any --jobs
//! spinfer quant [--shapes MxK,MxK] [--sparsities LIST] [--n N] [--seed S]
//!               [--smoke] [--checkpoint FILE] [--resume] [--gpu G] [--json]
//!                                                   precision×format ablation:
//!                                                   run SpInfer at FP16 and INT8
//!                                                   payload precision
//!                                                   functionally over every
//!                                                   (shape × sparsity) point via
//!                                                   the hardened resumable sweep
//!                                                   and report simulated
//!                                                   speedup, serialized
//!                                                   container compression, and
//!                                                   quantization error; the
//!                                                   --json report contains only
//!                                                   simulated/deterministic
//!                                                   numbers, byte-identical at
//!                                                   any --jobs and across
//!                                                   --resume
//! spinfer cluster [--replicas N] [--rps R] [--duration S] [--deadline S]
//!                 [--batch B] [--router round-robin|least-loaded|failover]
//!                 [--no-retries] [--no-degradation] [--fallback-kernel NAME]
//!                 [--faults RATE] [--fault-seed S] [--recovery SEC]
//!                 [--spec RATE] [--tree SHAPE]
//!                 [--seed S] [--gpu G] [--json] [--trace-dir DIR]
//!                                                   fleet resilience simulation:
//!                                                   N replicas behind a router with
//!                                                   deadlines, retries, admission
//!                                                   control, and a degradation
//!                                                   ladder; --faults arms seeded
//!                                                   crash/slow/launch-fault
//!                                                   injection; --spec arms
//!                                                   speculative decoding at the
//!                                                   given acceptance rate (tree
//!                                                   from --tree, default w2d3b8);
//!                                                   --trace-dir writes a
//!                                                   per-replica Chrome trace + a
//!                                                   metrics snapshot, byte-identical
//!                                                   at any --jobs
//! ```
//!
//! GPUs: `rtx4090` (default), `a6000`, `a100`. Models: `opt-13b`,
//! `opt-30b`, `opt-66b`. Frameworks: `spinfer`, `flash-llm`, `ft`, `ds`.
//! `serve` and `faults` accept `--json` to emit a machine-readable
//! metrics snapshot (`spinfer-obs-snapshot/v1`) instead of tables.
//!
//! Every subcommand accepts `--jobs N` to set the host worker count for
//! the parallel execution engine (default: `SPINFER_JOBS`, then all
//! hardware threads). Job count never changes simulated results —
//! `spinfer bench ... --jobs 1` and `--jobs 16` print identical tables.

use gpu_sim::fault::{FaultInjector, FaultPlan};
use gpu_sim::matrix::{max_abs_diff, random_dense, random_sparse, ValueDist};
use gpu_sim::trace::{pids, TraceEvent, TraceSink};
use gpu_sim::GpuSpec;
use spinfer_bench::sweep::{self, EncodeCache, SweepOutcome, SweepPoint};
use spinfer_bench::{render_table, KernelKind};
use spinfer_core::spmm::LaunchCtx;
use spinfer_core::{serialize, tune, SpMMHandle, SpinferSpmm, TcaBme};
use spinfer_llm::model::{Generator, ModelRef, TransformerWeights};
use spinfer_llm::{simulate, Framework, InferenceConfig, ModelConfig};
use spinfer_obs::Registry;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    sweep::configure_jobs(&args);
    let result = match args.first().map(String::as_str) {
        Some("encode") => cmd_encode(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("tune") => cmd_tune(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("faults") => cmd_faults(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("spec") => cmd_spec(&args[1..]),
        Some("quant") => cmd_quant(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        _ => {
            eprintln!(
                "usage: spinfer <encode|inspect|bench|tune|serve|generate|snapshot|faults|sweep|trace|spec|quant|cluster> ..."
            );
            eprintln!("see the module docs (or README) for argument lists");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), String>;

fn parse<T: std::str::FromStr>(args: &[String], i: usize, what: &str) -> Result<T, String> {
    args.get(i)
        .ok_or_else(|| format!("missing argument: {what}"))?
        .parse()
        .map_err(|_| format!("invalid {what}: {}", args[i]))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn gpu(args: &[String]) -> Result<GpuSpec, String> {
    match flag_value(args, "--gpu").unwrap_or("rtx4090") {
        "rtx4090" => Ok(GpuSpec::rtx4090()),
        "a6000" => Ok(GpuSpec::a6000()),
        "a100" => Ok(GpuSpec::a100_like()),
        other => Err(format!("unknown gpu {other}")),
    }
}

fn cmd_encode(args: &[String]) -> CliResult {
    let m: usize = parse(args, 0, "M")?;
    let k: usize = parse(args, 1, "K")?;
    let s: f64 = parse(args, 2, "sparsity")?;
    if !(0.0..=1.0).contains(&s) {
        return Err("sparsity must be in [0, 1]".into());
    }
    let w = random_sparse(m, k, s, ValueDist::Normal { std: 0.05 }, 0);
    let enc = TcaBme::encode(&w);
    println!("encoded {m}x{k} at {:.1}% sparsity", s * 100.0);
    println!("  nnz             : {}", enc.nnz);
    println!("  dense bytes     : {}", 2 * m * k);
    println!("  encoded bytes   : {}", enc.storage_bytes());
    println!("  compression     : {:.3}x", enc.compression_ratio());
    println!("  GroupTiles      : {}", enc.num_gtiles());
    println!("  BitmapTiles     : {}", enc.num_btiles());
    if let Some(path) = flag_value(args, "--out") {
        let bytes = serialize::to_bytes(&enc);
        std::fs::write(path, &bytes).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  wrote {} bytes to {path}", bytes.len());
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> CliResult {
    let path = args.first().ok_or("missing file argument")?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let enc = serialize::from_bytes(&bytes).map_err(|e| e.to_string())?;
    println!("{path}: TCA-BME container");
    println!("  logical shape : {}x{}", enc.m, enc.k);
    println!("  padded shape  : {}x{}", enc.m_pad, enc.k_pad);
    println!(
        "  GroupTile     : {}x{}",
        enc.config.gt_rows, enc.config.gt_cols
    );
    println!(
        "  nnz           : {} ({:.1}% sparse)",
        enc.nnz,
        100.0 * (1.0 - enc.nnz as f64 / (enc.m * enc.k) as f64)
    );
    println!("  compression   : {:.3}x", enc.compression_ratio());
    Ok(())
}

fn cmd_bench(args: &[String]) -> CliResult {
    let m: usize = parse(args, 0, "M")?;
    let k: usize = parse(args, 1, "K")?;
    let n: usize = parse(args, 2, "N")?;
    let s: f64 = parse(args, 3, "sparsity")?;
    let spec = gpu(args)?;
    let functional = args.iter().any(|a| a == "--functional");
    println!(
        "kernel comparison: {m}x{k} (s={:.0}%) x {k}x{n} on {}{}",
        s * 100.0,
        spec.name,
        if functional { " [functional]" } else { "" }
    );
    let roster = [
        KernelKind::CublasTc,
        KernelKind::SpInfer,
        KernelKind::FlashLlm,
        KernelKind::SparTa,
        KernelKind::Sputnik,
        KernelKind::CuSparse,
        KernelKind::Smat,
    ];
    let headers = ["kernel", "time (us)", "speedup vs cuBLAS"];
    let times: Vec<f64> = if functional {
        // Functional path: one weight matrix, encoded at most once per
        // format (the cache is shared by all kernels), bit-exact output
        // and counters from real addresses.
        let cache = EncodeCache::new();
        let times = roster
            .iter()
            .map(|&kernel| {
                let p = SweepPoint {
                    m,
                    k,
                    n,
                    sparsity: s,
                    kernel,
                };
                sweep::run_functional(&cache, &spec, &p, 0).time_us()
            })
            .collect();
        if let Some(path) = flag_value(args, "--metrics") {
            let mut reg = Registry::new();
            cache.record_metrics(&mut reg);
            std::fs::write(path, reg.snapshot_json()).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!(
                "wrote {path} (generate {:.3}s, encode {:.3}s)",
                cache.matrices().generate_s(),
                cache.encode_s()
            );
        }
        times
    } else {
        roster
            .iter()
            .map(|kind| kind.time_us(&spec, m, k, n, s))
            .collect()
    };
    let base = times[0];
    let rows: Vec<Vec<String>> = roster
        .iter()
        .zip(&times)
        .map(|(kind, &t)| {
            vec![
                kind.label().to_string(),
                format!("{t:.1}"),
                format!("{:.2}x", base / t),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    Ok(())
}

fn cmd_tune(args: &[String]) -> CliResult {
    let m: usize = parse(args, 0, "M")?;
    let k: usize = parse(args, 1, "K")?;
    let n: usize = parse(args, 2, "N")?;
    let s: f64 = parse(args, 3, "sparsity")?;
    let spec = gpu(args)?;
    let r = tune(&spec, m, k, n, s);
    println!(
        "autotune {m}x{k}x{n} (s={:.0}%) on {}: {} candidates",
        s * 100.0,
        spec.name,
        r.candidates.len()
    );
    let headers = ["rank", "GroupTile", "split_k", "time (us)"];
    let rows: Vec<Vec<String>> = r
        .candidates
        .iter()
        .take(8)
        .enumerate()
        .map(|(i, c)| {
            vec![
                (i + 1).to_string(),
                format!("{}x{}", c.gt.gt_rows, c.gt.gt_cols),
                if c.config.split_k == 0 {
                    "auto".into()
                } else {
                    c.config.split_k.to_string()
                },
                format!("{:.1}", c.time_us),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let model = match args.first().map(String::as_str) {
        Some("opt-13b") => ModelConfig::opt_13b(),
        Some("opt-30b") => ModelConfig::opt_30b(),
        Some("opt-66b") => ModelConfig::opt_66b(),
        other => return Err(format!("unknown model {other:?} (opt-13b/opt-30b/opt-66b)")),
    };
    let framework = match args.get(1).map(String::as_str) {
        Some("spinfer") => Framework::SpInfer,
        Some("flash-llm") => Framework::FlashLlm,
        Some("ft") => Framework::FasterTransformer,
        Some("ds") => Framework::DeepSpeed,
        other => return Err(format!("unknown framework {other:?}")),
    };
    let tp: usize = parse(args, 2, "TP")?;
    let batch: usize = parse(args, 3, "batch")?;
    let out: usize = parse(args, 4, "out_len")?;
    let spec = gpu(args)?;
    let cfg = InferenceConfig {
        model,
        framework,
        sparsity: 0.6,
        batch,
        input_len: 64,
        output_len: out,
        tp,
    };
    let r = simulate(&spec, &cfg);
    if args.iter().any(|a| a == "--json") {
        let mut reg = Registry::new();
        reg.gauge_set("serve.oom", if r.oom { 1.0 } else { 0.0 });
        reg.gauge_set("serve.memory_gib", r.memory.total_gib());
        reg.gauge_set("serve.tp", tp as f64);
        reg.gauge_set("serve.batch", batch as f64);
        if !r.oom {
            reg.gauge_set("serve.tokens_per_sec", r.tokens_per_sec);
            reg.gauge_set("serve.prefill_sec", r.prefill_sec);
            reg.gauge_set("serve.per_step_sec", r.per_step_sec);
            let b = r.breakdown;
            reg.gauge_set("serve.breakdown.linear_frac", b.linear / b.total());
            reg.gauge_set("serve.breakdown.mha_frac", b.mha / b.total());
            reg.gauge_set("serve.breakdown.comm_frac", b.comm / b.total());
            reg.gauge_set("serve.breakdown.other_frac", b.other / b.total());
        }
        println!("{}", reg.snapshot_json());
        return Ok(());
    }
    println!(
        "{} via {} on {}x{} (BS={batch}, out={out}, 60% sparsity)",
        model.name,
        framework.label(),
        tp,
        spec.name
    );
    if r.oom {
        println!(
            "  OOM: needs {:.1} GiB/GPU, device has {:.1} GiB",
            r.memory.total_gib(),
            spec.memory_capacity as f64 / (1u64 << 30) as f64
        );
        return Ok(());
    }
    println!("  tokens/s      : {:.0}", r.tokens_per_sec);
    println!("  prefill       : {:.1} ms", r.prefill_sec * 1e3);
    println!("  per-step      : {:.2} ms", r.per_step_sec * 1e3);
    println!("  memory/GPU    : {:.1} GiB", r.memory.total_gib());
    let b = r.breakdown;
    println!(
        "  breakdown     : linear {:.0}% | MHA {:.0}% | comm {:.0}% | other {:.0}%",
        100.0 * b.linear / b.total(),
        100.0 * b.mha / b.total(),
        100.0 * b.comm / b.total(),
        100.0 * b.other / b.total()
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> CliResult {
    let n: usize = args
        .first()
        .map(|s| s.parse().map_err(|_| format!("invalid token count {s}")))
        .transpose()?
        .unwrap_or(12);
    let cfg = spinfer_llm::model::tiny_config();
    let weights = TransformerWeights::random(cfg, 2026);
    let sparse = weights.pruned(0.6, 7);
    let spec = GpuSpec::rtx4090();
    println!(
        "tiny functional transformer ({} layers, h={}, 60% Wanda-pruned)",
        cfg.layers, cfg.hidden
    );

    let mut dense_gen = Generator::new(ModelRef::Dense(&weights), spec.clone(), n + 4);
    let dense_out = dense_gen.generate(&[1, 2, 3], n);
    println!("  dense  tokens : {dense_out:?}");
    println!(
        "  dense  sim    : {:.1} us linear over {} launches",
        dense_gen.telemetry.linear_sec * 1e6,
        dense_gen.telemetry.launches
    );

    let mut sparse_gen = Generator::new(ModelRef::Sparse(&sparse), spec, n + 4);
    let sparse_out = sparse_gen.generate(&[1, 2, 3], n);
    println!("  sparse tokens : {sparse_out:?}");
    println!(
        "  sparse sim    : {:.1} us linear over {} launches",
        sparse_gen.telemetry.linear_sec * 1e6,
        sparse_gen.telemetry.launches
    );
    println!(
        "  linear weights: dense {} B -> encoded {} B",
        weights.linear_bytes(),
        sparse.linear_bytes()
    );
    let _ = SpMMHandle::encode(&random_sparse(16, 16, 0.5, ValueDist::Uniform, 1));
    Ok(())
}

fn cmd_faults(args: &[String]) -> CliResult {
    let m: usize = parse(args, 0, "M")?;
    let k: usize = parse(args, 1, "K")?;
    let n: usize = parse(args, 2, "N")?;
    let s: f64 = parse(args, 3, "sparsity")?;
    let spec = gpu(args)?;
    let rate: f64 = match flag_value(args, "--rate") {
        Some(v) => v.parse().map_err(|_| format!("invalid rate: {v}"))?,
        None => 0.02,
    };
    let seed: u64 = match flag_value(args, "--seed") {
        Some(v) => v.parse().map_err(|_| format!("invalid seed: {v}"))?,
        None => 1234,
    };
    let json = args.iter().any(|a| a == "--json");
    if !json {
        println!(
            "fault smoke: {m}x{k}x{n} s={:.0}% rate={rate} seed={seed} on {}",
            s * 100.0,
            spec.name
        );
    }
    let w = random_sparse(m, k, s, ValueDist::Uniform, seed);
    let x = random_dense(k, n, ValueDist::Uniform, seed ^ 0xff);
    let enc = TcaBme::encode(&w);
    let inj = FaultInjector::new(FaultPlan::uniform(seed, rate));
    let run = SpinferSpmm::new()
        .run_checked(&spec, &enc, &x, Some(&inj))
        .map_err(|e| format!("checked kernel aborted: {e}"))?;
    let c = &run.chain.launches[0].counters;
    let out = run
        .output
        .as_ref()
        .ok_or("functional run must have output")?;
    let finite = out.iter().all(|v| v.is_finite());
    let err = max_abs_diff(out, &w.matmul_ref(&x));
    if json {
        let mut reg = Registry::new();
        reg.counter_add("faults.injected", c.faults_injected);
        reg.counter_add("faults.detected", c.faults_detected);
        reg.counter_add("faults.recovered", c.faults_recovered);
        reg.counter_add("faults.fallbacks", c.fault_fallbacks);
        reg.gauge_set("faults.output_finite", if finite { 1.0 } else { 0.0 });
        reg.gauge_set("faults.max_abs_err", f64::from(err));
        reg.gauge_set("faults.rate", rate);
        println!("{}", reg.snapshot_json());
    } else {
        println!("  faults injected : {}", c.faults_injected);
        println!("  faults detected : {}", c.faults_detected);
        println!("  recovered       : {}", c.faults_recovered);
        println!("  fallbacks       : {}", c.fault_fallbacks);
        println!("  output finite   : {finite}");
        println!("  max |err|       : {err:.4}");
    }
    if c.faults_injected == 0 || c.faults_detected == 0 {
        return Err("expected at least one injected and detected fault".into());
    }
    if c.faults_recovered + c.fault_fallbacks == 0 {
        return Err("no detection was resolved by retry or fallback".into());
    }
    if !finite {
        return Err("corruption escaped as non-finite output".into());
    }
    if err >= 0.5 {
        return Err(format!("recovered output diverges from reference ({err})"));
    }
    if !json {
        println!("  OK: all detections handled, output correct");
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> CliResult {
    let m: usize = parse(args, 0, "M")?;
    let k: usize = parse(args, 1, "K")?;
    let n: usize = parse(args, 2, "N")?;
    let spec = gpu(args)?;
    let checkpoint = flag_value(args, "--checkpoint").map(std::path::PathBuf::from);
    let resume = args.iter().any(|a| a == "--resume");
    let panic_at: Option<usize> = match flag_value(args, "--panic-at") {
        Some(v) => Some(v.parse().map_err(|_| format!("invalid --panic-at: {v}"))?),
        None => None,
    };
    let points: Vec<SweepPoint> = [0.4, 0.5, 0.6, 0.7]
        .iter()
        .flat_map(|&sparsity| {
            KernelKind::figure10_roster()
                .into_iter()
                .map(move |kernel| SweepPoint {
                    m,
                    k,
                    n,
                    sparsity,
                    kernel,
                })
        })
        .collect();
    println!(
        "hardened sweep: {} points on {}{}{}",
        points.len(),
        spec.name,
        checkpoint
            .as_deref()
            .map(|p| format!(" [checkpoint {}]", p.display()))
            .unwrap_or_default(),
        if resume { " [resume]" } else { "" }
    );
    let outcomes = match panic_at {
        Some(idx) => {
            let spec2 = spec.clone();
            sweep::run_grid_hardened_with(
                points.clone(),
                checkpoint.as_deref(),
                resume,
                move |i, p| {
                    if i == idx {
                        panic!("injected sweep panic at point {i}");
                    }
                    p.kernel.time_us(&spec2, p.m, p.k, p.n, p.sparsity)
                },
            )
        }
        None => sweep::run_grid_hardened(&spec, points.clone(), checkpoint.as_deref(), resume),
    }
    .map_err(|e| format!("checkpoint I/O: {e}"))?;

    let headers = ["idx", "kernel", "sparsity", "status", "time (us)"];
    let rows: Vec<Vec<String>> = points
        .iter()
        .zip(&outcomes)
        .enumerate()
        .map(|(i, (p, o))| {
            let (status, time) = match o {
                SweepOutcome::Done(t) => ("done", format!("{t:.1}")),
                SweepOutcome::Resumed(t) => ("resumed", format!("{t:.1}")),
                SweepOutcome::Panicked(msg) => ("panicked", msg.clone()),
            };
            vec![
                i.to_string(),
                p.kernel.label().to_string(),
                format!("{:.2}", p.sparsity),
                status.to_string(),
                time,
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    let done = outcomes
        .iter()
        .filter(|o| matches!(o, SweepOutcome::Done(_)))
        .count();
    let resumed = outcomes
        .iter()
        .filter(|o| matches!(o, SweepOutcome::Resumed(_)))
        .count();
    let panicked = outcomes.len() - done - resumed;
    println!("summary: done {done} resumed {resumed} panicked {panicked}");
    if let Some(dir) = flag_value(args, "--trace-dir") {
        write_sweep_trace(dir, &points, &outcomes)?;
    }
    Ok(())
}

/// Reconstructs the sweep grid as a trace — one span per completed point
/// laid end to end on the *simulated* time axis (cumulative point times,
/// so the track reads as "where did the simulated microseconds go") —
/// plus a metrics snapshot with outcome counters and a point-time
/// histogram. Writes `DIR/sweep_trace.json` and `DIR/sweep_metrics.json`.
fn write_sweep_trace(dir: &str, points: &[SweepPoint], outcomes: &[SweepOutcome]) -> CliResult {
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {dir}: {e}"))?;
    let sink = TraceSink::new();
    sink.name_track((pids::SWEEP, 0), "sweep grid (sim µs)", "points");
    let mut reg = Registry::new();
    let mut cursor = 0.0f64;
    for (p, o) in points.iter().zip(outcomes) {
        match o {
            SweepOutcome::Done(t) | SweepOutcome::Resumed(t) => {
                sink.record(
                    TraceEvent::span((pids::SWEEP, 0), p.kernel.label(), "sweep", cursor, *t)
                        .with_arg("sparsity", p.sparsity),
                );
                cursor += *t;
                let key = if matches!(o, SweepOutcome::Done(_)) {
                    "sweep.done"
                } else {
                    "sweep.resumed"
                };
                reg.counter_add(key, 1);
                reg.histogram_record("sweep.point_time_us", *t);
            }
            SweepOutcome::Panicked(_) => {
                sink.record(TraceEvent::instant(
                    (pids::SWEEP, 0),
                    "panicked",
                    "sweep",
                    cursor,
                ));
                reg.counter_add("sweep.panicked", 1);
            }
        }
    }
    let trace_json = spinfer_obs::export(&sink.finish());
    spinfer_obs::validate(&trace_json).map_err(|e| format!("sweep trace is invalid: {e}"))?;
    let trace_path = format!("{dir}/sweep_trace.json");
    let metrics_path = format!("{dir}/sweep_metrics.json");
    std::fs::write(&trace_path, &trace_json).map_err(|e| format!("write {trace_path}: {e}"))?;
    std::fs::write(&metrics_path, reg.snapshot_json())
        .map_err(|e| format!("write {metrics_path}: {e}"))?;
    println!("wrote {trace_path} and {metrics_path}");
    Ok(())
}

fn cmd_snapshot(args: &[String]) -> CliResult {
    let spec = gpu(args)?;
    let mut cfg = spinfer_bench::snapshot::SnapshotConfig::default();
    // Positional overrides: M K N sparsity (all four or none).
    if args.first().is_some_and(|a| !a.starts_with("--")) {
        cfg.m = parse(args, 0, "M")?;
        cfg.k = parse(args, 1, "K")?;
        cfg.n = parse(args, 2, "N")?;
        cfg.sparsity = parse(args, 3, "sparsity")?;
    }
    if let Some(s) = flag_value(args, "--seed") {
        cfg.seed = s.parse().map_err(|_| format!("invalid seed: {s}"))?;
    }
    eprintln!(
        "snapshot: {}x{}x{} s={} on {} (functional run at --jobs 1 and default jobs)",
        cfg.m, cfg.k, cfg.n, cfg.sparsity, spec.name
    );
    let mut snap = spinfer_bench::snapshot::measure(&spec, &cfg);
    if let Some(budget_path) = flag_value(args, "--budget") {
        let baseline = std::fs::read_to_string(budget_path)
            .map_err(|e| format!("read budget baseline {budget_path}: {e}"))?;
        // The kernel gate is mandatory and gets 1.25x headroom. The
        // setup gates apply whenever the baseline records them
        // (pre-setup-pipeline baselines do not) and get 1.5x: their
        // wall-clock is dominated by hundreds of MB of first-touch
        // page faults, whose cost swings far more run-to-run on
        // shared hosts than the compute-bound functional run.
        let gates = [
            (
                "spinfer_functional_jobs1",
                snap.spinfer_functional_jobs1_s,
                true,
                1.25,
            ),
            ("generate", snap.gen_s, false, 1.5),
            ("encode", snap.encode_s, false, 1.5),
            ("cluster_smoke", snap.cluster_smoke_s, false, 1.5),
            ("spec_smoke", snap.spec_smoke_s, false, 1.5),
            ("quant_smoke", snap.quant_smoke_s, false, 1.5),
        ];
        for (label, measured, required, headroom) in gates {
            let base = match spinfer_bench::snapshot::wall_clock_of(&baseline, label) {
                Some(base) => base,
                None if required => {
                    return Err(format!("{budget_path}: no wall_clock_s.{label}"));
                }
                None => {
                    eprintln!("budget: baseline has no wall_clock_s.{label}; skipping");
                    continue;
                }
            };
            // Absolute floor: sub-millisecond baselines (the cluster
            // smoke rounds to 0.000) would otherwise make any positive
            // later measurement a "regression".
            let limit = (base * headroom).max(0.05);
            if measured > limit {
                return Err(format!(
                    "wall-clock budget exceeded: {label} took {measured:.3}s, \
                     over {headroom}x the {base:.3}s baseline in {budget_path} ({limit:.3}s)"
                ));
            }
            eprintln!("budget ok: {label} {measured:.3}s <= {headroom}x baseline {base:.3}s");
        }
    }
    match flag_value(args, "--out") {
        Some(path) => {
            // Overwriting an existing snapshot appends its latest
            // measurement to the history chain instead of losing it.
            if let Ok(prev) = std::fs::read_to_string(path) {
                snap.history = spinfer_bench::snapshot::carry_history(&prev);
            }
            let json = snap.to_json();
            std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!(
                "wrote {path} (jobs1 {:.3}s, default({}) {:.3}s)",
                snap.spinfer_functional_jobs1_s,
                snap.default_jobs,
                snap.spinfer_functional_default_s
            );
        }
        None => print!("{}", snap.to_json()),
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> CliResult {
    let m: usize = parse(args, 0, "M")?;
    let k: usize = parse(args, 1, "K")?;
    let n: usize = parse(args, 2, "N")?;
    let s: f64 = parse(args, 3, "sparsity")?;
    let spec = gpu(args)?;
    let out = flag_value(args, "--out").unwrap_or("trace.json");
    // Any registered kernel traces: the capability comes from LaunchCtx,
    // not from a SpInfer-only method.
    let kernel =
        spinfer_baselines::kernel_by_name(flag_value(args, "--kernel").unwrap_or("SpInfer"))
            .map_err(|e| {
                let roster: Vec<&str> = spinfer_baselines::registry()
                    .iter()
                    .map(|k| k.name())
                    .collect();
                format!("{e}; registered kernels: {}", roster.join(", "))
            })?;
    eprintln!(
        "trace: functional {} {m}x{k}x{n} s={:.0}% on {}",
        kernel.name(),
        s * 100.0,
        spec.name
    );
    let w = random_sparse(m, k, s, ValueDist::Uniform, 1234);
    let x = random_dense(k, n, ValueDist::Uniform, 1234 ^ 0xff);
    let enc = kernel.encode(&w);

    let sink = std::sync::Arc::new(TraceSink::new());
    gpu_sim::exec::set_task_trace(Some(sink.clone()));
    let run = kernel
        .launch(&LaunchCtx::new(&spec).with_sink(&sink), &enc, &x)
        .map_err(|e| format!("{} launch failed: {e}", kernel.name()))?;
    gpu_sim::exec::set_task_trace(None);
    let trace = sink.finish();

    let json = spinfer_obs::export(&trace);
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    let stats =
        spinfer_obs::validate(&json).map_err(|e| format!("emitted trace is invalid: {e}"))?;

    let headers = [
        "phase",
        "spans",
        "total (us)",
        "p50 (us)",
        "p95 (us)",
        "p99 (us)",
    ];
    let rows: Vec<Vec<String>> = spinfer_obs::phase_breakdown(&trace)
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.count.to_string(),
                format!("{:.1}", r.total_us),
                format!("{:.3}", r.p50_us),
                format!("{:.3}", r.p95_us),
                format!("{:.3}", r.p99_us),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));

    let sim_us = run.time_us();
    let rel = (stats.phase_total_us - sim_us).abs() / sim_us.max(1e-9);
    println!(
        "simulated time {sim_us:.1} us | phase spans sum {:.1} us ({:+.3}%) | {} spans, {} flow pairs",
        stats.phase_total_us,
        100.0 * (stats.phase_total_us - sim_us) / sim_us.max(1e-9),
        stats.spans,
        stats.flow_pairs
    );
    println!(
        "wrote {out} ({} bytes) — load it at ui.perfetto.dev",
        json.len()
    );
    if rel > 0.01 {
        return Err(format!(
            "phase attribution drifted: spans sum to {:.1} us but the kernel simulated {sim_us:.1} us",
            stats.phase_total_us
        ));
    }
    Ok(())
}

fn cmd_spec(args: &[String]) -> CliResult {
    use spinfer_llm::spec::{DraftModel, SpecConfig, TreeShape};
    use spinfer_llm::{
        framework_for_kernel, serve_spec_ctx, serve_with, LengthMix, ServingConfig,
        SpecServingReport, SpecStats,
    };
    let spec = gpu(args)?;
    let model = match flag_value(args, "--model").unwrap_or("opt-13b") {
        "opt-13b" => ModelConfig::opt_13b(),
        "opt-30b" => ModelConfig::opt_30b(),
        "opt-66b" => ModelConfig::opt_66b(),
        other => return Err(format!("unknown model {other} (opt-13b/opt-30b/opt-66b)")),
    };
    let kernel_name = flag_value(args, "--kernel").unwrap_or("SpInfer");
    let framework = framework_for_kernel(kernel_name).map_err(|e| {
        let roster: Vec<&str> = spinfer_baselines::registry()
            .iter()
            .map(|k| k.name())
            .collect();
        format!("{e}; registered kernels: {}", roster.join(", "))
    })?;
    let parse_flag = |flag: &str, what: &str| -> Result<Option<f64>, String> {
        match flag_value(args, flag) {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid {what}: {v}")),
            None => Ok(None),
        }
    };
    let sparsity = parse_flag("--sparsity", "sparsity")?.unwrap_or(0.6);
    let tp: usize = match flag_value(args, "--tp") {
        Some(v) => v.parse().map_err(|_| format!("invalid tp: {v}"))?,
        None => 1,
    };
    let batch: usize = match flag_value(args, "--batch") {
        Some(v) => v.parse().map_err(|_| format!("invalid batch: {v}"))?,
        None => 16,
    };
    let input_len: usize = match flag_value(args, "--input") {
        Some(v) => v.parse().map_err(|_| format!("invalid input: {v}"))?,
        None => 64,
    };
    let output_len: usize = match flag_value(args, "--output") {
        Some(v) => v.parse().map_err(|_| format!("invalid output: {v}"))?,
        None => 128,
    };
    let rps = parse_flag("--rps", "rps")?.unwrap_or(4.0);
    let duration = parse_flag("--duration", "duration")?.unwrap_or(40.0);
    let draft_frac = parse_flag("--draft-frac", "draft fraction")?.unwrap_or(0.08);
    let share = parse_flag("--share", "speculative share")?.unwrap_or(1.0);
    let seed: u64 = match flag_value(args, "--seed") {
        Some(v) => v.parse().map_err(|_| format!("invalid seed: {v}"))?,
        None => 0,
    };
    let shapes: Vec<TreeShape> = flag_value(args, "--shapes")
        .unwrap_or("w1d4,w2d3b8")
        .split(',')
        .map(|s| TreeShape::parse(s.trim()).ok_or_else(|| format!("invalid tree shape: {s}")))
        .collect::<Result<_, _>>()?;
    let rates: Vec<f64> = flag_value(args, "--rates")
        .unwrap_or("0.0,0.5,0.8")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("invalid acceptance rate: {s}"))
        })
        .collect::<Result<_, _>>()?;
    let serving_cfg = ServingConfig {
        model,
        framework,
        sparsity,
        tp,
        max_batch: batch,
        arrival_rps: rps,
        input_len,
        output_len,
        duration_sec: duration,
        mix: LengthMix::Uniform,
    };
    serving_cfg.validate().map_err(|e| e.to_string())?;
    let json = args.iter().any(|a| a == "--json");
    let trace_dir = flag_value(args, "--trace-dir");
    let sink = trace_dir.map(|_| TraceSink::new());
    let mut reg = Registry::new();

    // Incremental baseline: same workload, plain one-token decode.
    let base = serve_with(&spec, &serving_cfg, sink.as_ref());
    SpecServingReport {
        serving: base.clone(),
        stats: SpecStats::default(),
    }
    .write_metrics(&mut reg, "spec.incremental");

    let mut runs: Vec<(String, f64, SpecServingReport)> = Vec::new();
    for &shape in &shapes {
        for &rate in &rates {
            let sc = SpecConfig {
                shape,
                draft: DraftModel {
                    cost_frac: draft_frac,
                    ..DraftModel::default()
                },
                acceptance_rate: rate,
                spec_share: share,
                seed,
            };
            sc.validate().map_err(|e| e.to_string())?;
            let mut ctx = LaunchCtx::new(&spec);
            if let Some(s) = sink.as_ref() {
                ctx = ctx.with_sink(s);
            }
            let r = serve_spec_ctx(&ctx, &serving_cfg, &sc);
            let prefix = format!("spec.{}.r{:02}", shape.label(), (rate * 100.0).round());
            r.write_metrics(&mut reg, &prefix);
            reg.gauge_set(
                &format!("{prefix}.speedup_vs_incremental"),
                r.serving.tokens_per_sec / base.tokens_per_sec.max(1e-12),
            );
            runs.push((shape.label(), rate, r));
        }
    }

    if let Some(dir) = trace_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {dir}: {e}"))?;
        let trace_json =
            spinfer_obs::export(&sink.expect("sink exists when trace_dir set").finish());
        spinfer_obs::validate(&trace_json).map_err(|e| format!("spec trace is invalid: {e}"))?;
        let trace_path = format!("{dir}/spec_trace.json");
        let metrics_path = format!("{dir}/spec_metrics.json");
        std::fs::write(&trace_path, &trace_json).map_err(|e| format!("write {trace_path}: {e}"))?;
        std::fs::write(&metrics_path, reg.snapshot_json())
            .map_err(|e| format!("write {metrics_path}: {e}"))?;
        if !json {
            println!("wrote {trace_path} and {metrics_path}");
        }
    }
    if json {
        println!("{}", reg.snapshot_json());
        return Ok(());
    }

    println!(
        "speculative decoding: {} via {} ({} kernel) on {}x{} | {:.1} rps for {:.0}s, batch {}, in/out {}/{}, share {:.2}",
        serving_cfg.model.name,
        framework.label(),
        kernel_name,
        tp,
        spec.name,
        rps,
        duration,
        batch,
        input_len,
        output_len,
        share
    );
    let headers = [
        "config",
        "accept",
        "tok/s",
        "tok/iter",
        "tok/launch",
        "p95 (s)",
        "speedup",
    ];
    let mut rows: Vec<Vec<String>> = vec![vec![
        "incremental".to_string(),
        "-".to_string(),
        format!("{:.0}", base.tokens_per_sec),
        format!("{:.2}", base.tokens_per_iteration),
        format!("{:.2}", base.mean_batch),
        format!("{:.2}", base.p95_latency_sec),
        "1.00x".to_string(),
    ]];
    for (label, rate, r) in &runs {
        rows.push(vec![
            label.clone(),
            format!("{rate:.2}"),
            format!("{:.0}", r.serving.tokens_per_sec),
            format!("{:.2}", r.serving.tokens_per_iteration),
            format!("{:.2}", r.tokens_per_launch()),
            format!("{:.2}", r.serving.p95_latency_sec),
            format!(
                "{:.2}x",
                r.serving.tokens_per_sec / base.tokens_per_sec.max(1e-12)
            ),
        ]);
    }
    println!("{}", render_table(&headers, &rows));
    Ok(())
}

fn cmd_quant(args: &[String]) -> CliResult {
    let spec = gpu(args)?;
    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        spinfer_bench::quant::QuantConfig::smoke()
    } else {
        spinfer_bench::quant::QuantConfig::default()
    };
    if let Some(list) = flag_value(args, "--shapes") {
        cfg.shapes = list
            .split(',')
            .map(|pair| {
                let (m, k) = pair
                    .split_once('x')
                    .ok_or_else(|| format!("invalid shape {pair}, expected MxK"))?;
                Ok((
                    m.parse().map_err(|_| format!("invalid M in {pair}"))?,
                    k.parse().map_err(|_| format!("invalid K in {pair}"))?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
    }
    if let Some(list) = flag_value(args, "--sparsities") {
        cfg.sparsities = list
            .split(',')
            .map(|s| s.parse().map_err(|_| format!("invalid sparsity {s}")))
            .collect::<Result<Vec<_>, String>>()?;
    }
    if let Some(n) = flag_value(args, "--n") {
        cfg.n = n.parse().map_err(|_| format!("invalid --n: {n}"))?;
    }
    if let Some(s) = flag_value(args, "--seed") {
        cfg.seed = s.parse().map_err(|_| format!("invalid seed: {s}"))?;
    }
    let checkpoint = flag_value(args, "--checkpoint").map(std::path::PathBuf::from);
    let resume = args.iter().any(|a| a == "--resume");
    let json = args.iter().any(|a| a == "--json");
    if !json {
        eprintln!(
            "quant ablation: {} shapes x {} sparsities x 2 precisions on {}{}{}",
            cfg.shapes.len(),
            cfg.sparsities.len(),
            spec.name,
            checkpoint
                .as_deref()
                .map(|p| format!(" [checkpoint {}]", p.display()))
                .unwrap_or_default(),
            if resume { " [resume]" } else { "" }
        );
    }
    let rows = spinfer_bench::quant::run(&spec, &cfg, checkpoint.as_deref(), resume)
        .map_err(|e| format!("checkpoint I/O: {e}"))?;
    if json {
        print!("{}", spinfer_bench::quant::to_json(spec.name, &rows));
        return Ok(());
    }
    let headers = [
        "shape", "sparsity", "fp16 us", "int8 us", "speedup", "fp16 cmp", "int8 cmp", "max err",
        "fro err",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}x{}", r.m, r.k, r.n),
                format!("{:.2}", r.sparsity),
                format!("{:.1}", r.fp16_us),
                format!("{:.1}", r.int8_us),
                format!("{:.2}x", r.speedup),
                format!("{:.2}x", r.fp16_compression),
                format!("{:.2}x", r.int8_compression),
                format!("{:.5}", r.max_abs_err),
                format!("{:.5}", r.rel_fro_err),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &table));
    Ok(())
}

fn cmd_cluster(args: &[String]) -> CliResult {
    use spinfer_llm::{
        simulate_cluster_instrumented, ClusterConfig, ClusterFaultPlan, DegradationPolicy,
        RetryPolicy, RouterPolicy,
    };
    let spec = gpu(args)?;
    let mut cfg = ClusterConfig::default();
    let parse_flag = |flag: &str, what: &str| -> Result<Option<f64>, String> {
        match flag_value(args, flag) {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid {what}: {v}")),
            None => Ok(None),
        }
    };
    if let Some(v) = flag_value(args, "--replicas") {
        cfg.replicas = v.parse().map_err(|_| format!("invalid replicas: {v}"))?;
    }
    if let Some(v) = parse_flag("--rps", "rps")? {
        cfg.arrival_rps = v;
    }
    if let Some(v) = parse_flag("--duration", "duration")? {
        cfg.duration_sec = v;
    }
    if let Some(v) = parse_flag("--deadline", "deadline")? {
        cfg.deadline_sec = v;
    }
    if let Some(v) = flag_value(args, "--batch") {
        cfg.max_batch = v.parse().map_err(|_| format!("invalid batch: {v}"))?;
    }
    if let Some(v) = flag_value(args, "--seed") {
        cfg.seed = v.parse().map_err(|_| format!("invalid seed: {v}"))?;
    }
    if let Some(v) = flag_value(args, "--router") {
        cfg.router = RouterPolicy::parse(v)
            .ok_or_else(|| format!("unknown router {v} (round-robin/least-loaded/failover)"))?;
    }
    if args.iter().any(|a| a == "--no-retries") {
        cfg.retry = RetryPolicy::disabled();
    }
    if args.iter().any(|a| a == "--no-degradation") {
        cfg.degradation = DegradationPolicy::disabled();
    }
    if let Some(name) = flag_value(args, "--fallback-kernel") {
        cfg.degradation.fallback_kernel = Some(name.to_string());
    }
    if let Some(rate) = parse_flag("--spec", "spec acceptance rate")? {
        use spinfer_llm::spec::{SpecConfig, TreeShape};
        let shape = match flag_value(args, "--tree") {
            Some(s) => TreeShape::parse(s).ok_or_else(|| format!("invalid tree shape: {s}"))?,
            None => SpecConfig::default().shape,
        };
        cfg.spec = Some(SpecConfig {
            shape,
            acceptance_rate: rate,
            seed: cfg.seed,
            ..SpecConfig::default()
        });
    }
    let faults = match parse_flag("--faults", "fault rate")? {
        Some(rate) => {
            let mut plan = ClusterFaultPlan {
                seed: 1234,
                crash_rate: rate,
                slow_rate: rate,
                launch_fail_rate: rate,
                ..ClusterFaultPlan::default()
            };
            if let Some(v) = flag_value(args, "--fault-seed") {
                plan.seed = v.parse().map_err(|_| format!("invalid fault seed: {v}"))?;
            }
            if let Some(v) = parse_flag("--recovery", "recovery")? {
                plan.recovery_sec = v;
            }
            Some(plan)
        }
        None => None,
    };
    let json = args.iter().any(|a| a == "--json");
    let trace_dir = flag_value(args, "--trace-dir");

    let sink = trace_dir.map(|_| TraceSink::new());
    let mut reg = Registry::new();
    let report =
        simulate_cluster_instrumented(&spec, &cfg, faults.as_ref(), Some(&mut reg), sink.as_ref())
            .map_err(|e| format!("cluster simulation failed: {e}"))?;

    if let Some(dir) = trace_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {dir}: {e}"))?;
        let trace_json =
            spinfer_obs::export(&sink.expect("sink exists when trace_dir set").finish());
        spinfer_obs::validate(&trace_json).map_err(|e| format!("cluster trace is invalid: {e}"))?;
        let trace_path = format!("{dir}/cluster_trace.json");
        let metrics_path = format!("{dir}/cluster_metrics.json");
        std::fs::write(&trace_path, &trace_json).map_err(|e| format!("write {trace_path}: {e}"))?;
        std::fs::write(&metrics_path, reg.snapshot_json())
            .map_err(|e| format!("write {metrics_path}: {e}"))?;
        if !json {
            println!("wrote {trace_path} and {metrics_path}");
        }
    }
    if json {
        println!("{}", reg.snapshot_json());
        return Ok(());
    }

    println!(
        "fleet: {} replicas of {} via {} on {} | {:.1} rps for {:.0}s, SLO {:.1}s, router {}{}",
        cfg.replicas,
        cfg.model.name,
        cfg.framework.label(),
        spec.name,
        cfg.arrival_rps,
        cfg.duration_sec,
        cfg.deadline_sec,
        cfg.router.label(),
        faults
            .map(|p| format!(
                " | faults crash/slow/launch={} seed={}",
                p.crash_rate, p.seed
            ))
            .unwrap_or_default()
    );
    println!(
        "  requests      : {} arrived | {} completed ({} in SLO) | {} failed | {} shed | {} incomplete",
        report.arrivals,
        report.completed,
        report.completed_in_slo,
        report.failed,
        report.shed,
        report.incomplete
    );
    println!(
        "  goodput       : {:.2} rps in-SLO ({:.2} rps total)",
        report.goodput_rps, report.throughput_rps
    );
    println!(
        "  latency       : p50 {:.2}s | p95 {:.2}s | p99 {:.2}s",
        report.p50_latency_s, report.p95_latency_s, report.p99_latency_s
    );
    println!(
        "  resilience    : {} retries | {} timeouts | {} crashes | {} recoveries | {} launch faults | {} slow steps",
        report.retries,
        report.timeouts,
        report.crashes,
        report.recoveries,
        report.launch_faults,
        report.slow_steps
    );
    println!(
        "  ladder        : {} escalations | {} de-escalations | {} rung-3 rejects",
        report.degrade_escalations, report.degrade_deescalations, report.degraded_rejects
    );
    if let Some(sc) = &cfg.spec {
        println!(
            "  speculation   : tree {} rate {:.2} | {} spec requests | {} verify steps | {} accepted / {} proposed (+{} bonus) | {} rolled back",
            sc.shape.label(),
            sc.acceptance_rate,
            report.spec_requests,
            report.spec_steps,
            report.spec_accepted,
            report.spec_proposed,
            report.spec_bonus,
            report.spec_rolled_back
        );
    }
    let headers = [
        "replica",
        "completed",
        "crashes",
        "steps",
        "p50 (s)",
        "p95 (s)",
        "p99 (s)",
        "queue",
        "rung",
    ];
    let rows: Vec<Vec<String>> = report
        .per_replica
        .iter()
        .enumerate()
        .map(|(r, s)| {
            vec![
                r.to_string(),
                s.completed.to_string(),
                s.crashes.to_string(),
                s.steps.to_string(),
                format!("{:.2}", s.p50_latency_s),
                format!("{:.2}", s.p95_latency_s),
                format!("{:.2}", s.p99_latency_s),
                s.final_queue.to_string(),
                s.final_level.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    Ok(())
}
