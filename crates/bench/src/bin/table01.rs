//! Table 1: kernel-level ablation of SMBD and the asynchronous pipeline.

use gpu_sim::GpuSpec;
use spinfer_bench::{render_table, save_csv, spinfer_variant, HERO_K, HERO_M};
use spinfer_core::FormatStats;

fn main() {
    let spec = GpuSpec::rtx4090();
    let (n, s) = (16usize, 0.6f64);
    let stats = FormatStats::synthetic(HERO_M, HERO_K, s);

    let variants = [
        ("SMBD + AsyncPipe", true, true),
        ("w/o SMBD", false, true),
        ("w/o AsyncPipe", true, false),
    ];
    let headers = [
        "variant",
        "duration (us)",
        "max BW (%)",
        "issue slot busy (%)",
        "warp cycles/inst",
        "TC pipe util (%)",
    ];
    let mut rows = Vec::new();
    for (name, smbd, apipe) in variants {
        let r = spinfer_variant(smbd, apipe).estimate(&spec, &stats, n);
        let l = &r.chain.launches[0];
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", l.timing.time_sec * 1e6),
            format!("{:.1}", l.timing.bw_util * 100.0),
            format!("{:.1}", l.timing.issue_util * 100.0),
            format!("{:.1}", l.timing.warp_cycles_per_inst),
            format!("{:.1}", l.timing.tc_util * 100.0),
        ]);
    }
    println!(
        "Table 1 — ablation on {}, M/K/N={HERO_M}/{HERO_K}/{n}, sparsity {:.0}%",
        spec.name,
        s * 100.0
    );
    println!("{}", render_table(&headers, &rows));
    println!(
        "Paper shape: removing SMBD costs ~10% duration and collapses \
         bandwidth/issue/TC utilisation; removing AsyncPipe costs ~2%."
    );
    save_csv("table01", &headers, &rows);
}
