//! Figure 4: roofline placement of GEMM and SpMM formats at varying
//! sparsities and batch sizes (Eqs. 6–8).

use gpu_sim::GpuSpec;
use spinfer_bench::{render_table, save_csv, HERO_M};
use spinfer_roofline::{
    attainable_flops, ci_gemm, ci_optimal, ci_spmm, compression_ratio, FormatKind,
};

fn main() {
    let spec = GpuSpec::rtx4090();
    let m = HERO_M;
    let k = 8192;
    let headers = [
        "N",
        "sparsity",
        "point",
        "CI (FLOP/B)",
        "attainable TFLOP/s",
        "region",
    ];
    let mut rows = Vec::new();
    for &n in &[8usize, 16, 32, 2048] {
        for &s in &[0.5f64, 0.7] {
            let mut push = |label: String, ci: f64| {
                let p = attainable_flops(&spec, ci);
                rows.push(vec![
                    n.to_string(),
                    format!("{:.0}%", s * 100.0),
                    label,
                    format!("{:.2}", ci),
                    format!("{:.1}", p.flops / 1e12),
                    if p.memory_bound {
                        "memory".into()
                    } else {
                        "compute".into()
                    },
                ]);
            };
            push("GEMM".into(), ci_gemm(m, n));
            for f in [
                FormatKind::Csr,
                FormatKind::TiledCsl,
                FormatKind::SparTa,
                FormatKind::TcaBme,
            ] {
                let cr = compression_ratio(f, m, k, s);
                push(format!("SpMM/{}", f.label()), ci_spmm(m, n, cr));
            }
            push("SpMM/Optimal*".into(), ci_optimal(m, n, s));
        }
    }
    println!(
        "Figure 4 — roofline placement on {} (ridge {:.0} FLOP/B)",
        spec.name,
        spec.tc_ridge_point()
    );
    println!("{}", render_table(&headers, &rows));
    println!(
        "Paper shape: all decode-batch points are memory-bound; higher-CR \
         formats sit closer to the optimal star; large N crosses the ridge."
    );
    save_csv("fig04", &headers, &rows);
}
