//! Cross-architecture retargeting check (paper §6: "its core techniques
//! are generalizable to other hardware architectures").
//!
//! Runs the headline kernel comparison on all three device sheets —
//! RTX4090 (Ada), A6000 (Ampere), and an A100-like part — from the same
//! data-driven `GpuSpec`, showing the speedup structure survives
//! retargeting (absolute times scale with each part's bandwidth).

use gpu_sim::GpuSpec;
use spinfer_bench::{render_table, save_csv, KernelKind, HERO_K, HERO_M};

fn main() {
    let headers = [
        "GPU",
        "BW (GB/s)",
        "cuBLAS (us)",
        "SpInfer (us)",
        "speedup",
        "Flash-LLM speedup",
        "SparTA speedup",
    ];
    let mut rows = Vec::new();
    let (n, s) = (16usize, 0.6f64);
    for spec in [GpuSpec::rtx4090(), GpuSpec::a6000(), GpuSpec::a100_like()] {
        let cb = KernelKind::CublasTc.time_us(&spec, HERO_M, HERO_K, n, s);
        let sp = KernelKind::SpInfer.time_us(&spec, HERO_M, HERO_K, n, s);
        let fl = KernelKind::FlashLlm.time_us(&spec, HERO_M, HERO_K, n, s);
        let st = KernelKind::SparTa.time_us(&spec, HERO_M, HERO_K, n, s);
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.0}", spec.dram_bandwidth / 1e9),
            format!("{cb:.1}"),
            format!("{sp:.1}"),
            format!("{:.2}x", cb / sp),
            format!("{:.2}x", cb / fl),
            format!("{:.2}x", cb / st),
        ]);
    }
    println!(
        "Retargeting check — M/K/N={HERO_M}/{HERO_K}/{n}, sparsity {:.0}%:\n",
        s * 100.0
    );
    println!("{}", render_table(&headers, &rows));
    println!(
        "Reading: on the bandwidth-starved Ada/Ampere parts the speedup \
         tracks the compression ratio (the win is format-driven). On the \
         A100-like sheet — 1.5x the bandwidth but half the per-SM CUDA \
         throughput — SMBD's decode chain starts to bind and the margin \
         narrows: exactly the hardware sensitivity §6's call for sparse \
         tensor cores anticipates."
    );
    save_csv("retarget", &headers, &rows);
}
