//! Figure 13: end-to-end OPT-13B / OPT-30B inference on RTX4090 —
//! tokens/s and memory across frameworks, batch sizes, GPU counts and
//! output lengths (60% Wanda sparsity for the sparse frameworks).

use gpu_sim::GpuSpec;
use spinfer_bench::{render_table, save_csv};
use spinfer_llm::{simulate, Framework, InferenceConfig, ModelConfig};

fn main() {
    let spec = GpuSpec::rtx4090();
    let scenarios = [
        (ModelConfig::opt_13b(), 1usize),
        (ModelConfig::opt_13b(), 2),
        (ModelConfig::opt_30b(), 2),
        (ModelConfig::opt_30b(), 4),
    ];
    let headers = [
        "model",
        "GPUs",
        "batch",
        "out_len",
        "framework",
        "tokens/s",
        "GiB/GPU",
        "status",
    ];
    let mut rows = Vec::new();
    for (model, tp) in scenarios {
        for &batch in &[8usize, 16, 32] {
            for &out in &[64usize, 128, 256, 512, 1024] {
                for fw in Framework::all() {
                    let cfg = InferenceConfig {
                        model,
                        framework: fw,
                        sparsity: 0.6,
                        batch,
                        input_len: 64,
                        output_len: out,
                        tp,
                    };
                    let r = simulate(&spec, &cfg);
                    rows.push(vec![
                        model.name.into(),
                        tp.to_string(),
                        batch.to_string(),
                        out.to_string(),
                        fw.label().into(),
                        if r.oom {
                            "-".into()
                        } else {
                            format!("{:.0}", r.tokens_per_sec)
                        },
                        format!("{:.1}", r.memory.total_gib()),
                        if r.oom { "OOM".into() } else { "ok".into() },
                    ]);
                }
            }
        }
    }
    println!(
        "Figure 13 — end-to-end inference on {} (sparsity 60%)",
        spec.name
    );
    println!("{}", render_table(&headers, &rows));
    summarize(&rows);
    save_csv("fig13", &headers, &rows);
}

fn summarize(rows: &[Vec<String>]) {
    // Average SpInfer speedup vs each baseline over configs where both run.
    for baseline in ["Flash-LLM", "FT", "DS"] {
        let mut ratios = Vec::new();
        for chunk in rows.chunks(4) {
            let get = |label: &str| {
                chunk
                    .iter()
                    .find(|r| r[4] == label)
                    .and_then(|r| r[5].parse::<f64>().ok())
            };
            if let (Some(sp), Some(b)) = (get("SpInfer"), get(baseline)) {
                ratios.push(sp / b);
            }
        }
        if !ratios.is_empty() {
            let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
            println!(
                "Average SpInfer speedup vs {baseline}: {avg:.2}x over {} runnable configs",
                ratios.len()
            );
        }
    }
    let oom = |label: &str| {
        rows.iter()
            .filter(|r| r[4] == label && r[7] == "OOM")
            .count()
    };
    println!(
        "OOM configs — SpInfer: {}, Flash-LLM: {}, FT: {}, DS: {}",
        oom("SpInfer"),
        oom("Flash-LLM"),
        oom("FT"),
        oom("DS")
    );
}
