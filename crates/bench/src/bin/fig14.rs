//! Figure 14: end-to-end OPT-30B / OPT-66B inference on A6000 (pairwise
//! NVLink platform), mirroring Figure 13's grid.

use gpu_sim::GpuSpec;
use spinfer_bench::{render_table, save_csv};
use spinfer_llm::{simulate, Framework, InferenceConfig, ModelConfig};

fn main() {
    let spec = GpuSpec::a6000();
    let scenarios = [
        (ModelConfig::opt_30b(), 1usize),
        (ModelConfig::opt_30b(), 2),
        (ModelConfig::opt_66b(), 2),
        (ModelConfig::opt_66b(), 4),
    ];
    let headers = [
        "model",
        "GPUs",
        "batch",
        "out_len",
        "framework",
        "tokens/s",
        "GiB/GPU",
        "status",
    ];
    let mut rows = Vec::new();
    for (model, tp) in scenarios {
        for &batch in &[8usize, 16, 32] {
            for &out in &[64usize, 128, 256, 512, 1024] {
                for fw in Framework::all() {
                    let cfg = InferenceConfig {
                        model,
                        framework: fw,
                        sparsity: 0.6,
                        batch,
                        input_len: 64,
                        output_len: out,
                        tp,
                    };
                    let r = simulate(&spec, &cfg);
                    rows.push(vec![
                        model.name.into(),
                        tp.to_string(),
                        batch.to_string(),
                        out.to_string(),
                        fw.label().into(),
                        if r.oom {
                            "-".into()
                        } else {
                            format!("{:.0}", r.tokens_per_sec)
                        },
                        format!("{:.1}", r.memory.total_gib()),
                        if r.oom { "OOM".into() } else { "ok".into() },
                    ]);
                }
            }
        }
    }
    println!(
        "Figure 14 — end-to-end inference on {} (sparsity 60%)",
        spec.name
    );
    println!("{}", render_table(&headers, &rows));
    for baseline in ["Flash-LLM", "FT", "DS"] {
        let mut ratios = Vec::new();
        for chunk in rows.chunks(4) {
            let get = |label: &str| {
                chunk
                    .iter()
                    .find(|r| r[4] == label)
                    .and_then(|r| r[5].parse::<f64>().ok())
            };
            if let (Some(sp), Some(b)) = (get("SpInfer"), get(baseline)) {
                ratios.push(sp / b);
            }
        }
        if !ratios.is_empty() {
            let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
            println!("Average SpInfer speedup vs {baseline}: {avg:.2}x");
        }
    }
    save_csv("fig14", &headers, &rows);
}
