//! Figure 16: SpInfer vs cuBLAS_TC under small (decode) and large
//! (prefill) N — the paper's limitation discussion (§6): SpInfer can be
//! up to ~12% slower once the operation turns compute-bound.

use gpu_sim::GpuSpec;
use spinfer_bench::{render_table, save_csv, KernelKind, HERO_K, HERO_M};

fn main() {
    let spec = GpuSpec::rtx4090();
    let s = 0.6;
    let headers = [
        "N",
        "regime",
        "cuBLAS_TC (us)",
        "SpInfer (us)",
        "SpInfer speedup",
    ];
    let mut rows = Vec::new();
    for &n in &[8usize, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192] {
        let cb = KernelKind::CublasTc.time_us(&spec, HERO_M, HERO_K, n, s);
        let sp = KernelKind::SpInfer.time_us(&spec, HERO_M, HERO_K, n, s);
        let regime = if n <= 128 { "decode-ish" } else { "prefill" };
        rows.push(vec![
            n.to_string(),
            regime.into(),
            format!("{cb:.1}"),
            format!("{sp:.1}"),
            format!("{:.2}x", cb / sp),
        ]);
    }
    println!(
        "Figure 16 — small vs large N on {}, M={HERO_M}, K={HERO_K}, sparsity {:.0}%",
        spec.name,
        s * 100.0
    );
    println!("{}", render_table(&headers, &rows));
    println!(
        "Paper shape: large wins at decode batches; the advantage shrinks \
         as N grows and flips to a ~10% deficit in the compute-bound \
         prefill regime (paper: up to 11.8% slower)."
    );
    save_csv("fig16", &headers, &rows);
}
