//! Golden-constant probe for the determinism suite.
//!
//! Prints, as ready-to-paste Rust array literals, the pinned values the
//! golden-counter test in `tests/determinism.rs` asserts: per-kernel
//! merged-counter digest, simulated-time bit pattern, and FP32 output
//! checksum for the fixed-seed functional shape, plus the analytic
//! simulated times for the fig01 hero shape. Run it after any hot-path
//! change: the output must be byte-identical to the constants already in
//! the test, or the change altered simulated results.
//!
//! ```text
//! cargo run --release --bin golden
//! ```

use gpu_sim::exec;
use gpu_sim::matrix::checksum_f32;
use gpu_sim::GpuSpec;
use spinfer_bench::sweep::{run_functional, EncodeCache, SweepPoint};
use spinfer_bench::{KernelKind, HERO_K, HERO_M};

/// The functional golden shape: large enough to cross GroupTile and
/// split-K boundaries with ragged edges (900 and 720 are not multiples
/// of 64; 20 is not a multiple of 8), small enough for a debug-mode
/// test run.
const GOLDEN: (usize, usize, usize, f64, u64) = (900, 720, 20, 0.65, 1234);

fn roster() -> [KernelKind; 7] {
    [
        KernelKind::CublasTc,
        KernelKind::SpInfer,
        KernelKind::FlashLlm,
        KernelKind::SparTa,
        KernelKind::Sputnik,
        KernelKind::CuSparse,
        KernelKind::Smat,
    ]
}

fn main() {
    let spec = GpuSpec::rtx4090();
    let (m, k, n, sparsity, seed) = GOLDEN;
    exec::set_jobs(1);

    println!("// Captured by `cargo run --release --bin golden`.");
    println!(
        "// Functional golden shape: {m}x{k}x{n} s={sparsity} seed={seed} on {}.",
        spec.name
    );
    println!("const GOLDEN_FUNCTIONAL: [(&str, u64, u64, u64); 7] = [");
    let cache = EncodeCache::new();
    for kernel in roster() {
        let p = SweepPoint {
            m,
            k,
            n,
            sparsity,
            kernel,
        };
        let run = run_functional(&cache, &spec, &p, seed);
        let digest = run.chain.merged_counters().digest();
        let time_bits = run.time_us().to_bits();
        let checksum = checksum_f32(run.output.as_ref().expect("functional output"));
        println!(
            "    (\"{}\", {:#018x}, {:#018x}, {:#018x}),",
            kernel.label(),
            digest,
            time_bits,
            checksum
        );
    }
    println!("];");

    println!(
        "// Analytic simulated time (µs, f64 bits) at the hero shape {HERO_M}x{HERO_K}x16 s=0.6."
    );
    println!("const GOLDEN_HERO_ANALYTIC: [(&str, u64); 7] = [");
    for kernel in roster() {
        let us = kernel.time_us(&spec, HERO_M, HERO_K, 16, 0.6);
        println!("    (\"{}\", {:#018x}),", kernel.label(), us.to_bits());
    }
    println!("];");
}
