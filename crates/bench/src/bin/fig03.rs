//! Figure 3: compression ratio (Eq. 1) vs sparsity for CSR, Tiled-CSL,
//! SparTA, TCA-BME and the theoretical optimum, at M = K = 4096.

use spinfer_bench::{render_table, save_csv};
use spinfer_roofline::{compression_ratio, FormatKind};

fn main() {
    let (m, k) = (4096, 4096);
    let formats = FormatKind::all();
    let headers: Vec<&str> = std::iter::once("sparsity")
        .chain(formats.iter().map(|f| f.label()))
        .collect();
    let mut rows = Vec::new();
    for pct in (10..=90).step_by(10) {
        let s = f64::from(pct) / 100.0;
        let mut row = vec![format!("{pct}%")];
        for f in formats {
            row.push(format!("{:.3}", compression_ratio(f, m, k, s)));
        }
        rows.push(row);
    }
    println!("Figure 3 — compression ratio vs sparsity (M=K=4096)");
    println!("{}", render_table(&headers, &rows));
    println!(
        "Paper shape: CSR and Tiled-CSL sit below CR=1 until ~67%/50%; \
         SparTA slightly above 1 at 50%; TCA-BME above 1 at every level \
         shown, tracking the optimal line."
    );
    save_csv("fig03", &headers, &rows);
}
