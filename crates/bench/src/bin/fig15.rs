//! Figure 15: breakdown of end-to-end inference time (SpMM/GEMM, MHA,
//! COMM, other) — including the effect of SpInfer needing fewer GPUs and
//! therefore no PCIe all-reduces.

use gpu_sim::GpuSpec;
use spinfer_bench::{render_table, save_csv};
use spinfer_llm::{simulate, Framework, InferenceConfig, ModelConfig};

fn main() {
    let spec = GpuSpec::rtx4090();
    // The paper's headline case: OPT-13B fits one 4090 under SpInfer but
    // needs two GPUs under Flash-LLM / FT.
    let headers = [
        "model",
        "framework",
        "GPUs",
        "linear(s)",
        "MHA(s)",
        "COMM(s)",
        "other(s)",
        "total(s)",
    ];
    let mut rows = Vec::new();
    for (model, list) in [
        (
            ModelConfig::opt_13b(),
            vec![
                (Framework::SpInfer, 1usize),
                (Framework::SpInfer, 2),
                (Framework::FlashLlm, 2),
                (Framework::FasterTransformer, 2),
            ],
        ),
        (
            ModelConfig::opt_30b(),
            vec![
                (Framework::SpInfer, 2),
                (Framework::SpInfer, 4),
                (Framework::FlashLlm, 4),
                (Framework::FasterTransformer, 4),
            ],
        ),
    ] {
        for (fw, tp) in list {
            let cfg = InferenceConfig {
                model,
                framework: fw,
                sparsity: 0.6,
                batch: 16,
                input_len: 64,
                output_len: 256,
                tp,
            };
            let r = simulate(&spec, &cfg);
            let b = r.breakdown;
            rows.push(vec![
                model.name.into(),
                fw.label().into(),
                tp.to_string(),
                format!("{:.3}", b.linear),
                format!("{:.3}", b.mha),
                format!("{:.3}", b.comm),
                format!("{:.3}", b.other),
                format!("{:.3}{}", b.total(), if r.oom { " (OOM)" } else { "" }),
            ]);
        }
    }
    println!(
        "Figure 15 — end-to-end time breakdown on {} (BS=16, out=256, 60% sparsity)",
        spec.name
    );
    println!("{}", render_table(&headers, &rows));
    println!(
        "Paper shape: SpMM/GEMM dominates everywhere; SpInfer's linear \
         time is the smallest, and its single-GPU fit removes the COMM \
         component entirely on the PCIe platform."
    );
    save_csv("fig15", &headers, &rows);
}
