//! Design-choice ablations beyond the paper's Table 1: GroupTile
//! geometry, split-K factor, and N-tile width — the tunables DESIGN.md
//! calls out. Quantifies how much the shipped defaults matter.

use gpu_sim::GpuSpec;
use spinfer_bench::{render_table, save_csv, HERO_K, HERO_M};
use spinfer_core::tune::synthetic_with_config;
use spinfer_core::{Ablation, FormatStats, SpinferSpmm, SpmmConfig, TcaBmeConfig};

fn main() {
    let spec = GpuSpec::rtx4090();
    let (n, s) = (16usize, 0.6f64);
    println!(
        "Design ablations on {}, M/K/N={HERO_M}/{HERO_K}/{n}, sparsity {:.0}%\n",
        spec.name,
        s * 100.0
    );

    // --- GroupTile geometry ---
    let headers = ["GroupTile", "storage CR", "time (us)", "vs 64x64"];
    let mut rows = Vec::new();
    let base_time = run_gt(&spec, 64, 64, n, s);
    for (r, c) in [(32, 64), (64, 64), (64, 128), (128, 64), (128, 128)] {
        let t = run_gt(&spec, r, c, n, s);
        let stats = synthetic_with_config(
            HERO_M,
            HERO_K,
            s,
            TcaBmeConfig {
                gt_rows: r,
                gt_cols: c,
            },
        );
        let cr = stats.dense_bytes() as f64 / stats.storage_bytes() as f64;
        rows.push(vec![
            format!("{r}x{c}"),
            format!("{cr:.3}"),
            format!("{t:.1}"),
            format!("{:+.1}%", 100.0 * (t / base_time - 1.0)),
        ]);
    }
    println!("GroupTile geometry (storage is geometry-invariant; time moves\nwith per-block work granularity):");
    println!("{}", render_table(&headers, &rows));
    save_csv("ablation_grouptile", &headers, &rows);

    // --- Split-K ---
    let headers2 = ["split_k", "grid blocks", "time (us)"];
    let mut rows2 = Vec::new();
    for sk in [1usize, 2, 4, 8, 16] {
        let kernel = SpinferSpmm {
            config: SpmmConfig {
                split_k: sk,
                max_tile_n: 32,
                ablation: Ablation::default(),
            },
        };
        let run = kernel.estimate(&spec, &FormatStats::synthetic(HERO_M, HERO_K, s), n);
        rows2.push(vec![
            sk.to_string(),
            run.chain.launches[0].shape.grid_blocks.to_string(),
            format!("{:.1}", run.time_us()),
        ]);
    }
    println!("Split-K (tall M already fills the device; short M needs it —\nsee `tune` tests):");
    println!("{}", render_table(&headers2, &rows2));
    save_csv("ablation_splitk", &headers2, &rows2);

    // --- Split-K on a short-M layer where it matters ---
    let headers3 = ["split_k", "time (us) M=1024"];
    let mut rows3 = Vec::new();
    for sk in [1usize, 2, 4, 8, 16] {
        let kernel = SpinferSpmm {
            config: SpmmConfig {
                split_k: sk,
                max_tile_n: 32,
                ablation: Ablation::default(),
            },
        };
        let t = kernel
            .estimate(&spec, &FormatStats::synthetic(1024, 16384, s), n)
            .time_us();
        rows3.push(vec![sk.to_string(), format!("{t:.1}")]);
    }
    println!("Split-K on a short-wide layer (M=1024, K=16384):");
    println!("{}", render_table(&headers3, &rows3));
    save_csv("ablation_splitk_short", &headers3, &rows3);
}

fn run_gt(spec: &GpuSpec, gt_rows: usize, gt_cols: usize, n: usize, s: f64) -> f64 {
    let stats = synthetic_with_config(HERO_M, HERO_K, s, TcaBmeConfig { gt_rows, gt_cols });
    SpinferSpmm::new().estimate(spec, &stats, n).time_us()
}
