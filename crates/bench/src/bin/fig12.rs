//! Figure 12: micro-level comparison of SpInfer vs cuBLAS_TC and
//! Flash-LLM — registers, DRAM read, bandwidth utilisation, shared-memory
//! bank conflicts, and Tensor Core pipe utilisation (Nsight-style).

use gpu_sim::GpuSpec;
use spinfer_baselines::kernels::{CublasGemm, FlashLlmSpmm, FlashLlmStats};
use spinfer_bench::{render_table, save_csv, HERO_K, HERO_M};
use spinfer_core::{FormatStats, SpinferSpmm};

fn main() {
    let spec = GpuSpec::rtx4090();
    let (n, s) = (16usize, 0.6f64);

    let spinfer = SpinferSpmm::new().estimate(&spec, &FormatStats::synthetic(HERO_M, HERO_K, s), n);
    let flash =
        FlashLlmSpmm::new().estimate(&spec, &FlashLlmStats::synthetic(HERO_M, HERO_K, s), n);
    let cublas = CublasGemm::new().estimate(&spec, HERO_M, HERO_K, n);

    let headers = ["metric", "cuBLAS_TC", "Flash-LLM", "SpInfer"];
    let metric = |r: &spinfer_core::SpmmRun| {
        let l = &r.chain.launches[0];
        (
            l.shape.block.regs_per_thread,
            l.timing.dram_bytes as f64 / 1e6,
            l.timing.bw_util * 100.0,
            l.counters.smem_bank_conflicts,
            l.timing.tc_util * 100.0,
            l.timing.time_sec * 1e6,
        )
    };
    let (rc, dc, bc, kc, tc, timec) = metric(&cublas);
    let (rf, df, bf, kf, tf, timef) = metric(&flash);
    let (rs, ds, bs, ks, ts, times) = metric(&spinfer);

    let rows = vec![
        vec![
            "registers/thread".into(),
            rc.to_string(),
            rf.to_string(),
            rs.to_string(),
        ],
        vec!["DRAM read (MB)".into(), f1(dc), f1(df), f1(ds)],
        vec!["bandwidth util (%)".into(), f1(bc), f1(bf), f1(bs)],
        vec![
            "smem bank conflicts (M)".into(),
            f2(kc as f64 / 1e6),
            f2(kf as f64 / 1e6),
            f2(ks as f64 / 1e6),
        ],
        vec!["TC pipe util (%)".into(), f1(tc), f1(tf), f1(ts)],
        vec!["kernel time (us)".into(), f1(timec), f1(timef), f1(times)],
    ];
    println!(
        "Figure 12 — micro metrics on {}, M/K/N={HERO_M}/{HERO_K}/{n}, sparsity {:.0}%",
        spec.name,
        s * 100.0
    );
    println!("{}", render_table(&headers, &rows));
    println!(
        "Paper shape: SpInfer uses the fewest registers, reads the least \
         DRAM, has no scatter bank conflicts, and sustains the highest \
         effective bandwidth."
    );
    save_csv("fig12", &headers, &rows);
}

fn f1(x: f64) -> String {
    format!("{x:.1}")
}

fn f2(x: f64) -> String {
    format!("{x:.2}")
}
