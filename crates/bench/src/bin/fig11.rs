//! Figure 11: SpInfer vs SMaT from LLM sparsity to the extreme-sparsity
//! regime of scientific matrices, locating the crossover.
//!
//! Uniform sparsity keeps almost every 16×16 block non-empty until ~99%,
//! so SMaT's block skipping only pays off on *clustered* matrices; both
//! sweeps are reported (the paper's Fig. 11 uses sparse-matrix workloads
//! whose non-zeros cluster).

use gpu_sim::GpuSpec;
use spinfer_baselines::kernels::{SmatSpmm, SmatStats};
use spinfer_bench::{render_table, save_csv, HERO_K, HERO_M};
use spinfer_core::{FormatStats, SpinferSpmm};

fn main() {
    let spec = GpuSpec::rtx4090();
    let n = 16;

    println!(
        "Figure 11 — SpInfer vs SMaT on {} (M/K/N={HERO_M}/{HERO_K}/{n})\n",
        spec.name
    );

    // --- Uniform sparsity sweep ---
    let headers = [
        "sparsity",
        "SpInfer (us)",
        "SMaT (us)",
        "SpInfer/SMaT speedup",
    ];
    let mut rows = Vec::new();
    for &s in &[0.5, 0.7, 0.9, 0.99, 0.995, 0.999, 0.9995, 0.9999] {
        let sp = SpinferSpmm::new()
            .estimate(&spec, &FormatStats::synthetic(HERO_M, HERO_K, s), n)
            .time_us();
        let sm = SmatSpmm::new()
            .estimate(&spec, &SmatStats::synthetic_uniform(HERO_M, HERO_K, s), n)
            .time_us();
        rows.push(vec![
            format!("{:.2}%", s * 100.0),
            format!("{sp:.1}"),
            format!("{sm:.1}"),
            format!("{:.2}x", sm / sp),
        ]);
    }
    println!("Uniform sparsity:");
    println!("{}", render_table(&headers, &rows));
    save_csv("fig11_uniform", &headers, &rows);

    // --- Clustered (scientific-matrix) sweep ---
    // Element sparsity when a fraction `bd` of 16x16 blocks is ~70% full:
    // s = 1 - 0.7 * bd.
    let headers2 = [
        "block density",
        "elem sparsity",
        "SpInfer (us)",
        "SMaT (us)",
        "winner",
    ];
    let mut rows2 = Vec::new();
    for &bd in &[0.5, 0.2, 0.05, 0.01, 0.003, 0.001] {
        let s = 1.0 - 0.7 * bd;
        let sp = SpinferSpmm::new()
            .estimate(&spec, &FormatStats::synthetic(HERO_M, HERO_K, s), n)
            .time_us();
        let sm = SmatSpmm::new()
            .estimate(
                &spec,
                &SmatStats::synthetic_clustered(HERO_M, HERO_K, bd),
                n,
            )
            .time_us();
        rows2.push(vec![
            format!("{:.1}%", bd * 100.0),
            format!("{:.2}%", s * 100.0),
            format!("{sp:.1}"),
            format!("{sm:.1}"),
            if sp <= sm {
                "SpInfer".into()
            } else {
                "SMaT".into()
            },
        ]);
    }
    println!("Clustered non-zeros (SMaT's home turf, supplementary):");
    println!("{}", render_table(&headers2, &rows2));
    println!(
        "Paper shape (uniform sweep): SpInfer ~2x faster at 50%, and SMaT \
         only overtakes above ~99.7% sparsity once block skipping beats \
         TCA-BME's fixed bitmap cost; the clustered sweep shows the \
         crossover arriving much earlier when non-zeros are blocked."
    );
    save_csv("fig11_clustered", &headers2, &rows2);
}
