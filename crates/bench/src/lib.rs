//! # spinfer-bench — the paper's experiment harness
//!
//! One binary per table/figure of the SpInfer paper (see `DESIGN.md`'s
//! per-experiment index). This library holds the shared pieces: the
//! kernel roster, the model-derived benchmark shapes, plain-text /
//! CSV reporting, and the parallel sweep runner with its encode-once
//! cache ([`sweep`]).

pub mod quant;
pub mod snapshot;
pub mod sweep;

use gpu_sim::spec::GpuSpec;
use spinfer_baselines::kernels::{
    CublasGemm, CusparseSpmm, FlashLlmSpmm, FlashLlmStats, SmatSpmm, SmatStats, SpartaSpmm,
    SpartaStats, SputnikSpmm,
};
use spinfer_core::{Ablation, FormatStats, SpinferSpmm, SpinferSpmmInt8};
use spinfer_llm::ModelConfig;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Kernels compared at the kernel level (paper Figures 1, 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Dense Tensor-Core GEMM (the normalisation baseline).
    CublasTc,
    /// SpInfer-SpMM.
    SpInfer,
    /// SpInfer-SpMM at INT8 payload precision.
    SpInferInt8,
    /// Flash-LLM.
    FlashLlm,
    /// SparTA.
    SparTa,
    /// Sputnik.
    Sputnik,
    /// cuSPARSE.
    CuSparse,
    /// SMaT.
    Smat,
}

impl KernelKind {
    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::CublasTc => "cuBLAS_TC",
            KernelKind::SpInfer => "SpInfer",
            KernelKind::SpInferInt8 => "SpInfer-INT8",
            KernelKind::FlashLlm => "Flash-LLM",
            KernelKind::SparTa => "SparTA",
            KernelKind::Sputnik => "Sputnik",
            KernelKind::CuSparse => "cuSPARSE",
            KernelKind::Smat => "SMaT",
        }
    }

    /// The roster of Figure 10 (SMaT is compared separately in Fig. 11).
    pub fn figure10_roster() -> [KernelKind; 6] {
        [
            KernelKind::CublasTc,
            KernelKind::SpInfer,
            KernelKind::FlashLlm,
            KernelKind::SparTa,
            KernelKind::Sputnik,
            KernelKind::CuSparse,
        ]
    }

    /// Simulated execution time in microseconds for `M×K (sparsity s) ×
    /// K×N` on `spec`, via the kernel's analytic estimator.
    pub fn time_us(self, spec: &GpuSpec, m: usize, k: usize, n: usize, s: f64) -> f64 {
        let nnz = ((m * k) as f64 * (1.0 - s)).round() as usize;
        match self {
            KernelKind::CublasTc => CublasGemm::new().estimate(spec, m, k, n).time_us(),
            KernelKind::SpInfer => SpinferSpmm::new()
                .estimate(spec, &FormatStats::synthetic(m, k, s), n)
                .time_us(),
            KernelKind::SpInferInt8 => SpinferSpmmInt8::new()
                .estimate(spec, &FormatStats::synthetic(m, k, s), n)
                .time_us(),
            KernelKind::FlashLlm => FlashLlmSpmm::new()
                .estimate(spec, &FlashLlmStats::synthetic(m, k, s), n)
                .time_us(),
            KernelKind::SparTa => SpartaSpmm::new()
                .estimate(spec, &SpartaStats::synthetic(m, k, s), n)
                .time_us(),
            KernelKind::Sputnik => SputnikSpmm::new().estimate(spec, m, k, n, nnz).time_us(),
            KernelKind::CuSparse => CusparseSpmm::new().estimate(spec, m, k, n, nnz).time_us(),
            KernelKind::Smat => SmatSpmm::new()
                .estimate(spec, &SmatStats::synthetic_uniform(m, k, s), n)
                .time_us(),
        }
    }
}

/// SpInfer ablation variants for Table 1.
pub fn spinfer_variant(smbd: bool, async_pipe: bool) -> SpinferSpmm {
    SpinferSpmm::with_ablation(Ablation { smbd, async_pipe })
}

/// A model-derived weight shape used in Figure 10.
#[derive(Clone, Copy, Debug)]
pub struct BenchShape {
    /// Source model name.
    pub model: &'static str,
    /// Output dimension.
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
}

/// The benchmark shapes: per zoo model, its two dominant decode-phase
/// weight matrices — the fused QKV projection and the FFN up projection
/// (the paper draws its matrix sizes from the same models).
pub fn figure10_shapes() -> Vec<BenchShape> {
    let mut out = Vec::new();
    for m in ModelConfig::zoo() {
        let mats = m.layer_matrices();
        let qkv = &mats[0];
        out.push(BenchShape {
            model: m.name,
            m: qkv.m,
            k: qkv.k,
        });
        out.push(BenchShape {
            model: m.name,
            m: m.ffn_hidden,
            k: m.hidden,
        });
    }
    out
}

/// The paper's recurring single-matrix shape (Figures 1, 12, 16,
/// Table 1): the LLaMA2-70B FFN projection, M/K = 28672/8192.
pub const HERO_M: usize = 28672;
/// See [`HERO_M`].
pub const HERO_K: usize = 8192;

/// Formats a table as aligned plain text.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
        }
        out.push('\n');
    };
    fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// Writes a CSV next to the figure output under `results/`.
pub fn save_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut s = headers.join(",");
    s.push('\n');
    for row in rows {
        s.push_str(&row.join(","));
        s.push('\n');
    }
    let _ = fs::write(dir.join(format!("{name}.csv")), s);
}

/// Geometric mean of a slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_and_shapes() {
        assert_eq!(KernelKind::figure10_roster().len(), 6);
        let shapes = figure10_shapes();
        assert_eq!(shapes.len(), 24);
        assert!(shapes.iter().any(|s| s.m == 28672 && s.k == 8192));
        // Both matrix roles present per model.
        assert!(shapes.iter().any(|s| s.m == 3 * 5120 && s.k == 5120));
    }

    #[test]
    fn all_kernels_produce_times() {
        let spec = GpuSpec::rtx4090();
        for kind in [
            KernelKind::CublasTc,
            KernelKind::SpInfer,
            KernelKind::SpInferInt8,
            KernelKind::FlashLlm,
            KernelKind::SparTa,
            KernelKind::Sputnik,
            KernelKind::CuSparse,
            KernelKind::Smat,
        ] {
            let t = kind.time_us(&spec, 4096, 4096, 16, 0.5);
            assert!(t > 0.0 && t.is_finite(), "{:?}: {t}", kind);
        }
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
        );
        assert!(t.contains("a"));
        assert!(t.lines().count() == 4);
    }
}
