//! Precision×format ablation: SpInfer at FP16 vs INT8 payload
//! precision over a sparsity×shape grid (`spinfer quant`).
//!
//! Each grid point runs both kernels *functionally* through the
//! hardened resumable sweep (per-point panic isolation + JSONL
//! checkpoint, see [`crate::sweep`]), then reports, per (shape,
//! sparsity):
//!
//! * **simulated time** of each precision and the INT8 speedup,
//! * **container sizes** from the actual serialized bytes (the v2 FP16
//!   and v3 INT8 containers) against the dense FP16 footprint,
//! * **quantization error** of the INT8 container against the exact
//!   weights — max absolute error and relative Frobenius error over the
//!   dequantized matrix.
//!
//! Every reported number is a pure function of the grid and seed —
//! wall-clock never appears — so the JSON report is byte-identical at
//! any `--jobs` count and across checkpoint resumes (the CI
//! `quantized-inference` job asserts exactly that).

use crate::sweep::{self, EncodeCache, SweepPoint};
use crate::KernelKind;
use gpu_sim::matrix::{random_sparse, ValueDist};
use gpu_sim::spec::GpuSpec;
use spinfer_core::{serialize, TcaBme};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// The ablation grid: every (shape, sparsity) point runs at both
/// precisions with the same weights and activations.
#[derive(Clone, Debug)]
pub struct QuantConfig {
    /// `(M, K)` weight shapes.
    pub shapes: Vec<(usize, usize)>,
    /// Weight sparsity levels in `[0, 1]`.
    pub sparsities: Vec<f64>,
    /// Batch size (columns of X).
    pub n: usize,
    /// Weight/X generation seed.
    pub seed: u64,
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig {
            shapes: vec![(1024, 1024), (4096, 4096)],
            sparsities: vec![0.5, 0.6, 0.7],
            n: 16,
            seed: 0,
        }
    }
}

impl QuantConfig {
    /// The tiny grid the perf snapshot and CI smoke run: same coverage
    /// shape (2 shapes × 3 sparsities × 2 precisions) at toy sizes.
    pub fn smoke() -> Self {
        QuantConfig {
            shapes: vec![(128, 128), (256, 128)],
            sparsities: vec![0.5, 0.6, 0.7],
            n: 8,
            seed: 0,
        }
    }
}

/// One (shape, sparsity) row of the ablation report.
#[derive(Clone, Debug)]
pub struct QuantRow {
    /// Weight rows.
    pub m: usize,
    /// Weight columns.
    pub k: usize,
    /// Batch size.
    pub n: usize,
    /// Weight sparsity.
    pub sparsity: f64,
    /// Simulated FP16 kernel time in µs.
    pub fp16_us: f64,
    /// Simulated INT8 kernel time in µs.
    pub int8_us: f64,
    /// `fp16_us / int8_us`.
    pub speedup: f64,
    /// Dense FP16 footprint in bytes.
    pub dense_bytes: usize,
    /// Serialized v2 (FP16) container bytes.
    pub fp16_bytes: usize,
    /// Serialized v3 (INT8 + scales) container bytes.
    pub int8_bytes: usize,
    /// `dense_bytes / fp16_bytes`.
    pub fp16_compression: f64,
    /// `dense_bytes / int8_bytes`.
    pub int8_compression: f64,
    /// Max absolute weight error of the dequantized INT8 container.
    pub max_abs_err: f64,
    /// Relative Frobenius error of the dequantized INT8 container.
    pub rel_fro_err: f64,
}

/// The ablation grid as sweep points: for each (shape, sparsity), the
/// FP16 point immediately followed by its INT8 twin.
pub fn grid(cfg: &QuantConfig) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &(m, k) in &cfg.shapes {
        for &sparsity in &cfg.sparsities {
            for kernel in [KernelKind::SpInfer, KernelKind::SpInferInt8] {
                points.push(SweepPoint {
                    m,
                    k,
                    n: cfg.n,
                    sparsity,
                    kernel,
                });
            }
        }
    }
    points
}

/// Runs the ablation: both precisions functionally at every grid point
/// through the hardened sweep (checkpointed and resumable when a path
/// is given), then the encode-side size and error metrics. A point that
/// panicked drops its row (the sweep records the panic in the
/// checkpoint; resume retries it).
pub fn run(
    spec: &GpuSpec,
    cfg: &QuantConfig,
    checkpoint: Option<&Path>,
    resume: bool,
) -> io::Result<Vec<QuantRow>> {
    let points = grid(cfg);
    let cache = EncodeCache::new();
    let spec2 = spec.clone();
    let seed = cfg.seed;
    let outcomes =
        sweep::run_grid_hardened_with(points.clone(), checkpoint, resume, move |_, p| {
            sweep::run_functional(&cache, &spec2, p, seed).time_us()
        })?;

    let mut rows = Vec::new();
    for (pair, outs) in points.chunks_exact(2).zip(outcomes.chunks_exact(2)) {
        let p = &pair[0];
        debug_assert_eq!(pair[1].kernel, KernelKind::SpInferInt8);
        let (Some(fp16_us), Some(int8_us)) = (outs[0].time_us(), outs[1].time_us()) else {
            continue;
        };
        // Encode-side metrics: the same deterministic weights the sweep
        // ran against (identical generator key), measured through the
        // actual serialized containers.
        let w = random_sparse(p.m, p.k, p.sparsity, ValueDist::Uniform, seed);
        let fp16 = TcaBme::encode(&w);
        let int8 = fp16.quantize_int8();
        let dense_bytes = 2 * p.m * p.k;
        let fp16_bytes = serialize::to_bytes(&fp16).len();
        let int8_bytes = serialize::to_bytes_int8(&int8).len();
        let deq = int8.dequantize_dense();
        let mut max_abs_err = 0.0f64;
        let mut err_sq = 0.0f64;
        let mut ref_sq = 0.0f64;
        for (h, &d) in w.as_slice().iter().zip(&deq) {
            let v = f64::from(h.to_f32());
            let e = v - f64::from(d);
            max_abs_err = max_abs_err.max(e.abs());
            err_sq += e * e;
            ref_sq += v * v;
        }
        let rel_fro_err = if ref_sq > 0.0 {
            (err_sq / ref_sq).sqrt()
        } else {
            0.0
        };
        rows.push(QuantRow {
            m: p.m,
            k: p.k,
            n: p.n,
            sparsity: p.sparsity,
            fp16_us,
            int8_us,
            speedup: fp16_us / int8_us,
            dense_bytes,
            fp16_bytes,
            int8_bytes,
            fp16_compression: dense_bytes as f64 / fp16_bytes as f64,
            int8_compression: dense_bytes as f64 / int8_bytes as f64,
            max_abs_err,
            rel_fro_err,
        });
    }
    Ok(rows)
}

/// Renders the report as deterministic JSON: simulated and encode-side
/// numbers only (no wall-clock), so the bytes are identical at any job
/// count and across resumes.
pub fn to_json(gpu: &str, rows: &[QuantRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"spinfer-quant-ablation/v1\",");
    let _ = writeln!(s, "  \"gpu\": \"{gpu}\",");
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{ \"m\": {}, \"k\": {}, \"n\": {}, \"sparsity\": {}, \
             \"fp16_us\": {:.3}, \"int8_us\": {:.3}, \"speedup\": {:.4}, \
             \"dense_bytes\": {}, \"fp16_bytes\": {}, \"int8_bytes\": {}, \
             \"fp16_compression\": {:.4}, \"int8_compression\": {:.4}, \
             \"max_abs_err\": {:.6}, \"rel_fro_err\": {:.6} }}{comma}",
            r.m,
            r.k,
            r.n,
            r.sparsity,
            r.fp16_us,
            r.int8_us,
            r.speedup,
            r.dense_bytes,
            r.fp16_bytes,
            r.int8_bytes,
            r.fp16_compression,
            r.int8_compression,
            r.max_abs_err,
            r.rel_fro_err,
        );
    }
    let _ = writeln!(s, "  ]");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_required_ablation_axes() {
        let cfg = QuantConfig::default();
        assert!(cfg.shapes.len() >= 2, "at least two shapes");
        assert!(cfg.sparsities.len() >= 3, "at least three sparsity levels");
        let g = grid(&cfg);
        assert_eq!(g.len(), cfg.shapes.len() * cfg.sparsities.len() * 2);
        assert!(g.iter().any(|p| p.kernel == KernelKind::SpInfer));
        assert!(g.iter().any(|p| p.kernel == KernelKind::SpInferInt8));
    }

    #[test]
    fn smoke_run_reports_compression_speedup_and_error() {
        let spec = GpuSpec::rtx4090();
        let rows = run(&spec, &QuantConfig::smoke(), None, false).expect("no checkpoint I/O");
        assert_eq!(rows.len(), 6, "2 shapes x 3 sparsities");
        for r in &rows {
            assert!(r.fp16_us > 0.0 && r.int8_us > 0.0);
            assert!(r.speedup > 0.0 && r.speedup.is_finite());
            assert!(
                r.int8_bytes < r.fp16_bytes,
                "1 B codes + scales must beat 2 B values: {} vs {}",
                r.int8_bytes,
                r.fp16_bytes
            );
            assert!(r.int8_compression > r.fp16_compression);
            assert!(
                r.max_abs_err > 0.0 && r.max_abs_err < 0.01,
                "within one code step of uniform[-1,1] weights: {}",
                r.max_abs_err
            );
            assert!(r.rel_fro_err > 0.0 && r.rel_fro_err < 0.01);
        }
    }

    #[test]
    fn report_is_byte_identical_across_job_counts() {
        let spec = GpuSpec::rtx4090();
        let cfg = QuantConfig::smoke();
        gpu_sim::exec::set_jobs(1);
        let serial = to_json(spec.name, &run(&spec, &cfg, None, false).unwrap());
        gpu_sim::exec::set_jobs(0);
        let pooled = to_json(spec.name, &run(&spec, &cfg, None, false).unwrap());
        assert_eq!(serial, pooled, "job count leaked into the report");
        assert!(serial.contains("\"schema\": \"spinfer-quant-ablation/v1\""));
    }

    #[test]
    fn checkpoint_resume_reproduces_the_report() {
        let spec = GpuSpec::rtx4090();
        let cfg = QuantConfig::smoke();
        let path = std::env::temp_dir().join(format!(
            "spinfer_quant_ckpt_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let first = run(&spec, &cfg, Some(&path), false).unwrap();
        let resumed = run(&spec, &cfg, Some(&path), true).unwrap();
        assert_eq!(
            to_json(spec.name, &first),
            to_json(spec.name, &resumed),
            "resumed report must match the original"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn int8_wins_at_the_hero_shape() {
        // At memory-bound serving shapes the INT8 estimate must be
        // faster; tiny smoke shapes are allowed to be overhead-bound.
        let spec = GpuSpec::rtx4090();
        let fp16 = KernelKind::SpInfer.time_us(&spec, crate::HERO_M, crate::HERO_K, 16, 0.6);
        let int8 = KernelKind::SpInferInt8.time_us(&spec, crate::HERO_M, crate::HERO_K, 16, 0.6);
        assert!(int8 < fp16, "INT8 {int8} us must beat FP16 {fp16} us");
    }
}
