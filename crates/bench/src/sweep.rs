//! Parallel sweep runner: fans benchmark grid points across host cores
//! and encodes each weight matrix exactly once.
//!
//! Figure-scale experiments evaluate a grid of (shape, sparsity, N,
//! kernel) points. Every point is an independent pure function of its
//! inputs, so the grid fans out over `gpu_sim::exec`'s worker pool —
//! results come back in point order and simulated times are identical
//! at any job count (host parallelism only changes wall-clock; see
//! `docs/TIMING_MODEL.md`). The job count follows `gpu_sim::exec`
//! resolution: [`configure_jobs`] (`--jobs N`) → `SPINFER_JOBS` →
//! available hardware threads.
//!
//! Functional sweeps additionally share an [`EncodeCache`]: a (shape,
//! sparsity) point generates its weight matrix and encodes each
//! registered weight format at most once — keyed by
//! [`SpmmKernel::format_key`], so kernels sharing a format (Sputnik and
//! cuSPARSE both read CSR) share one encoding — reused across all batch
//! sizes and kernels that touch the point.
//!
//! [`SpmmKernel::format_key`]: spinfer_core::spmm::SpmmKernel::format_key

use crate::KernelKind;
use gpu_sim::exec;
use gpu_sim::matrix::{random_dense, random_sparse, DenseMatrix, ValueDist};
use gpu_sim::spec::GpuSpec;
use spinfer_baselines::{kernel_by_name, registry};
use spinfer_core::spmm::{DynEncoded, DynSpmmKernel, LaunchCtx, SpmmRun};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Parses a `--jobs N` command-line override.
pub fn jobs_flag(args: &[String]) -> Option<usize> {
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

/// Applies a `--jobs N` override (if present) to the process-wide
/// worker count used by every parallel primitive.
pub fn configure_jobs(args: &[String]) {
    if let Some(n) = jobs_flag(args) {
        exec::set_jobs(n);
    }
}

/// One grid point of a kernel sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Weight rows.
    pub m: usize,
    /// Weight columns (reduction dimension).
    pub k: usize,
    /// Batch size (columns of X).
    pub n: usize,
    /// Weight sparsity in `[0, 1]`.
    pub sparsity: f64,
    /// Kernel under test.
    pub kernel: KernelKind,
}

/// Fans arbitrary grid points across host cores; results in point
/// order, identical to a serial map at any job count.
pub fn par_points<I, R, F>(points: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    exec::par_map(points, f)
}

/// Analytic sweep: simulated time in microseconds per point, in point
/// order.
pub fn run_grid(spec: &GpuSpec, points: Vec<SweepPoint>) -> Vec<f64> {
    par_points(points, |p| {
        p.kernel.time_us(spec, p.m, p.k, p.n, p.sparsity)
    })
}

/// Cache key for a generated matrix: rows, cols, sparsity in basis
/// points (`None` for the dense generator), value-distribution tag +
/// parameter bits, seed.
type MatrixKey = (usize, usize, Option<u32>, u8, u32, u64);

/// Collapses a [`ValueDist`] to a hashable `(tag, param bits)` pair.
fn dist_key(dist: ValueDist) -> (u8, u32) {
    match dist {
        ValueDist::Uniform => (0, 0),
        ValueDist::Normal { std } => (1, std.to_bits()),
    }
}

/// Generate-once cache over matrix generation points.
///
/// Generation is deterministic in the key — `random_sparse` /
/// `random_dense` are pure functions of `(shape, sparsity, dist,
/// seed)` — so a cached matrix is byte-identical to a fresh one and
/// the cache only changes wall-clock. Counts hits/misses and the total
/// generation wall-clock for the setup metrics
/// ([`EncodeCache::record_metrics`]).
#[derive(Default)]
pub struct MatrixCache {
    entries: Mutex<HashMap<MatrixKey, Arc<DenseMatrix>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    gen_nanos: AtomicU64,
}

impl MatrixCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared sparse matrix for a generation point, built on first
    /// request. Sparsity is keyed at basis-point resolution.
    pub fn sparse(
        &self,
        m: usize,
        k: usize,
        sparsity: f64,
        dist: ValueDist,
        seed: u64,
    ) -> Arc<DenseMatrix> {
        let (tag, bits) = dist_key(dist);
        let key = (m, k, Some((sparsity * 1e4).round() as u32), tag, bits, seed);
        self.fetch(key, || random_sparse(m, k, sparsity, dist, seed))
    }

    /// The shared dense matrix for a generation point, built on first
    /// request.
    pub fn dense(&self, m: usize, k: usize, dist: ValueDist, seed: u64) -> Arc<DenseMatrix> {
        let (tag, bits) = dist_key(dist);
        let key = (m, k, None, tag, bits, seed);
        self.fetch(key, || random_dense(m, k, dist, seed))
    }

    fn fetch(&self, key: MatrixKey, generate: impl FnOnce() -> DenseMatrix) -> Arc<DenseMatrix> {
        match self.entries.lock().unwrap().entry(key) {
            Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                e.get().clone()
            }
            Entry::Vacant(v) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let t0 = Instant::now();
                let m = Arc::new(generate());
                self.gen_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                v.insert(m).clone()
            }
        }
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that generated a matrix.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total generation wall-clock in seconds.
    pub fn generate_s(&self) -> f64 {
        self.gen_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }
}

/// A weight matrix with one lazily-built encoding slot per distinct
/// format key in the kernel registry, each behind a `OnceLock`
/// (concurrent first callers block rather than re-encode).
pub struct EncodedWeights {
    weight: Arc<DenseMatrix>,
    slots: Vec<(&'static str, OnceLock<DynEncoded>)>,
    encodes: Arc<AtomicU64>,
    encode_nanos: Arc<AtomicU64>,
}

impl EncodedWeights {
    fn new(
        weight: Arc<DenseMatrix>,
        encodes: Arc<AtomicU64>,
        encode_nanos: Arc<AtomicU64>,
    ) -> Self {
        let mut slots: Vec<(&'static str, OnceLock<DynEncoded>)> = Vec::new();
        for kernel in registry() {
            if !slots.iter().any(|(key, _)| *key == kernel.format_key()) {
                slots.push((kernel.format_key(), OnceLock::new()));
            }
        }
        EncodedWeights {
            weight,
            slots,
            encodes,
            encode_nanos,
        }
    }

    /// The dense weight matrix.
    pub fn weight(&self) -> &DenseMatrix {
        &self.weight
    }

    /// The encoding `kernel` consumes, built on first use and shared by
    /// every kernel with the same format key (the returned handle is a
    /// cheap clone of the cached `Arc`).
    ///
    /// # Panics
    ///
    /// Panics if `kernel`'s format key is not in the registry roster.
    pub fn encoded_for(&self, kernel: &DynSpmmKernel) -> DynEncoded {
        let key = kernel.format_key();
        let slot = self
            .slots
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, slot)| slot)
            .unwrap_or_else(|| panic!("format '{key}' is not in the kernel registry"));
        slot.get_or_init(|| {
            self.encodes.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let enc = kernel.encode(&self.weight);
            self.encode_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            enc
        })
        .clone()
    }
}

/// Cache key: (m, k, sparsity in basis points, seed).
type PointKey = (usize, usize, u32, u64);

/// Encode-once cache over (m, k, sparsity, seed) weight points.
///
/// Owns a [`MatrixCache`] so the dense weight behind a point (and the
/// X operands of [`run_functional`]) generate at most once, and counts
/// encode builds + wall-clock for [`EncodeCache::record_metrics`].
#[derive(Default)]
pub struct EncodeCache {
    points: Mutex<HashMap<PointKey, Arc<EncodedWeights>>>,
    matrices: MatrixCache,
    encodes: Arc<AtomicU64>,
    encode_nanos: Arc<AtomicU64>,
}

// A sweep evaluator that panics mid-encode leaves the cache's mutexes
// poisoned and its `OnceLock` slots either unset or fully built — the
// states later points already handle — so sharing a cache across
// `catch_unwind`-isolated points (as the quant ablation does) cannot
// observe a broken invariant.
impl std::panic::RefUnwindSafe for EncodeCache {}

impl EncodeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The generate-once matrix cache backing this encode cache.
    pub fn matrices(&self) -> &MatrixCache {
        &self.matrices
    }

    /// The shared weights for a (shape, sparsity) point, generating
    /// them on first request. Sparsity is keyed at basis-point
    /// resolution.
    pub fn point(&self, m: usize, k: usize, sparsity: f64, seed: u64) -> Arc<EncodedWeights> {
        let key = (m, k, (sparsity * 1e4).round() as u32, seed);
        match self.points.lock().unwrap().entry(key) {
            Entry::Occupied(e) => e.get().clone(),
            Entry::Vacant(v) => {
                let weight = self
                    .matrices
                    .sparse(m, k, sparsity, ValueDist::Uniform, seed);
                v.insert(Arc::new(EncodedWeights::new(
                    weight,
                    self.encodes.clone(),
                    self.encode_nanos.clone(),
                )))
                .clone()
            }
        }
    }

    /// Number of distinct weight points generated so far.
    pub fn len(&self) -> usize {
        self.points.lock().unwrap().len()
    }

    /// Whether no point has been generated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encodings built so far (cache reuse does not count).
    pub fn encodes(&self) -> u64 {
        self.encodes.load(Ordering::Relaxed)
    }

    /// Total encode wall-clock in seconds.
    pub fn encode_s(&self) -> f64 {
        self.encode_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Records the setup-phase counters and wall-clocks into a metrics
    /// registry: `setup.generate_s` / `setup.encode_s` gauges (host
    /// wall-clock — setup contributes zero simulated microseconds, see
    /// `docs/TIMING_MODEL.md`) plus matrix-cache hit/miss and
    /// encode-build counters.
    pub fn record_metrics(&self, reg: &mut spinfer_obs::Registry) {
        reg.gauge_set("setup.generate_s", self.matrices.generate_s());
        reg.gauge_set("setup.encode_s", self.encode_s());
        reg.counter_add("setup.matrix_cache_hits", self.matrices.hits());
        reg.counter_add("setup.matrix_cache_misses", self.matrices.misses());
        reg.counter_add("setup.encodes", self.encodes());
    }
}

/// Functional execution of one grid point through the encode cache:
/// the kernel is resolved from the registry by its figure label and
/// launched against the point's shared encoding — no per-kernel
/// dispatch here.
///
/// The weight matrix is seeded by `seed` and X by a value derived from
/// `seed` and the point's batch size, so a grid point's result is a
/// pure function of `(point, seed)` — independent of sweep order and
/// job count.
pub fn run_functional(cache: &EncodeCache, spec: &GpuSpec, p: &SweepPoint, seed: u64) -> SpmmRun {
    let weights = cache.point(p.m, p.k, p.sparsity, seed);
    let x = cache.matrices().dense(
        p.k,
        p.n,
        ValueDist::Uniform,
        seed ^ (p.n as u64).rotate_left(32),
    );
    let kernel = kernel_by_name(p.kernel.label()).expect("every KernelKind label is registered");
    let enc = weights.encoded_for(&kernel);
    match kernel.launch(&LaunchCtx::new(spec), &enc, &x) {
        Ok(run) => run,
        Err(e) => panic!(
            "{} launch failed outside a fault context: {e}",
            kernel.name()
        ),
    }
}

/// Functional sweep: fans every point across host cores through one
/// shared [`EncodeCache`], so each (shape, sparsity) encodes once no
/// matter how many batch sizes and kernels visit it.
pub fn run_functional_grid(spec: &GpuSpec, points: Vec<SweepPoint>, seed: u64) -> Vec<SpmmRun> {
    let cache = EncodeCache::new();
    par_points(points, |p| run_functional(&cache, spec, &p, seed))
}

/// Outcome of one isolated sweep point (see [`run_grid_hardened_with`]).
#[derive(Clone, Debug, PartialEq)]
pub enum SweepOutcome {
    /// Completed this process; simulated time in microseconds.
    Done(f64),
    /// Loaded from the checkpoint instead of re-running.
    Resumed(f64),
    /// The evaluator panicked; the sweep continued without the point.
    Panicked(String),
}

impl SweepOutcome {
    /// The point's simulated time, when it has one.
    pub fn time_us(&self) -> Option<f64> {
        match self {
            SweepOutcome::Done(t) | SweepOutcome::Resumed(t) => Some(*t),
            SweepOutcome::Panicked(_) => None,
        }
    }
}

/// Stable identity of a grid point inside a checkpoint file: the
/// resume logic only trusts a line whose key matches the same index in
/// the *current* grid, so editing the sweep invalidates stale rows
/// instead of silently mismatching them.
fn point_key(p: &SweepPoint) -> String {
    format!(
        "m{}k{}n{}s{:.4}x{}",
        p.m,
        p.k,
        p.n,
        p.sparsity,
        p.kernel.label()
    )
}

/// Minimal JSON string escape for checkpoint lines (panic messages may
/// contain quotes, backslashes, or newlines).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Pulls a field's raw value out of one of our own checkpoint lines.
/// Not a general JSON parser — the writer below is the only producer.
fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.find('"').map(|e| &stripped[..e])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Completed `(idx, time_us)` entries of a checkpoint whose key still
/// matches the current grid. Lines that are malformed (e.g. truncated
/// by a crash mid-write), stale, or record a panic are ignored — a
/// panicked point is retried on resume.
fn load_checkpoint(path: &Path, points: &[SweepPoint]) -> io::Result<HashMap<usize, f64>> {
    let mut done = HashMap::new();
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(done),
        Err(e) => return Err(e),
    };
    for line in io::BufReader::new(file).lines() {
        let line = line?;
        let Some(idx) = field(&line, "idx").and_then(|v| v.parse::<usize>().ok()) else {
            continue;
        };
        let (Some(key), Some(status)) = (field(&line, "key"), field(&line, "status")) else {
            continue;
        };
        if status != "done" || points.get(idx).map(point_key).as_deref() != Some(key) {
            continue;
        }
        if let Some(t) = field(&line, "time_us").and_then(|v| v.parse::<f64>().ok()) {
            done.insert(idx, t);
        }
    }
    Ok(done)
}

fn checkpoint_line(idx: usize, key: &str, outcome: &SweepOutcome) -> String {
    match outcome {
        SweepOutcome::Done(t) | SweepOutcome::Resumed(t) => {
            format!("{{\"idx\":{idx},\"key\":\"{key}\",\"status\":\"done\",\"time_us\":{t}}}\n")
        }
        SweepOutcome::Panicked(msg) => format!(
            "{{\"idx\":{idx},\"key\":\"{key}\",\"status\":\"panicked\",\"error\":\"{}\"}}\n",
            json_escape(msg)
        ),
    }
}

/// Hardened analytic sweep: [`run_grid_hardened_with`] with the default
/// per-point evaluator ([`KernelKind::time_us`]).
pub fn run_grid_hardened(
    spec: &GpuSpec,
    points: Vec<SweepPoint>,
    checkpoint: Option<&Path>,
    resume: bool,
) -> io::Result<Vec<SweepOutcome>> {
    let spec = spec.clone();
    run_grid_hardened_with(points, checkpoint, resume, move |_, p| {
        p.kernel.time_us(&spec, p.m, p.k, p.n, p.sparsity)
    })
}

/// Fault-isolated, checkpointed sweep.
///
/// Every grid point runs `eval` inside a per-point `catch_unwind`
/// (via [`exec::par_map_catch`]): a panicking point becomes
/// [`SweepOutcome::Panicked`] while every other point completes. With a
/// `checkpoint` path, each completed point appends one JSONL line —
/// flushed immediately, so a killed sweep loses at most in-flight
/// points — and `resume: true` skips points whose `done` line matches
/// the current grid ([`SweepOutcome::Resumed`]); panicked and stale
/// lines are retried. Results come back in point order at any job
/// count.
pub fn run_grid_hardened_with<F>(
    points: Vec<SweepPoint>,
    checkpoint: Option<&Path>,
    resume: bool,
    eval: F,
) -> io::Result<Vec<SweepOutcome>>
where
    F: Fn(usize, &SweepPoint) -> f64 + Sync + std::panic::RefUnwindSafe,
{
    let prior = match (checkpoint, resume) {
        (Some(path), true) => load_checkpoint(path, &points)?,
        _ => HashMap::new(),
    };
    let keys: Vec<String> = points.iter().map(point_key).collect();
    let writer = checkpoint
        .map(|path| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
        })
        .transpose()?
        .map(Mutex::new);

    let items: Vec<(usize, SweepPoint)> = points.into_iter().enumerate().collect();
    let results = exec::par_map_catch(items, |(idx, p)| {
        if let Some(&t) = prior.get(&idx) {
            return (idx, p, SweepOutcome::Resumed(t));
        }
        let t = eval(idx, &p);
        let outcome = SweepOutcome::Done(t);
        if let Some(w) = &writer {
            // Flush per point: the checkpoint must survive a kill.
            let line = checkpoint_line(idx, &point_key(&p), &outcome);
            let mut w = w.lock().unwrap();
            let _ = w.write_all(line.as_bytes()).and_then(|()| w.flush());
        }
        (idx, p, outcome)
    });

    let mut outcomes = Vec::with_capacity(results.len());
    for (idx, res) in results.into_iter().enumerate() {
        let outcome = match res {
            Ok((_, _, outcome)) => outcome,
            Err(msg) => SweepOutcome::Panicked(msg),
        };
        // Panicked points unwound before reaching the in-flight writer;
        // record them now so the checkpoint mirrors the full grid (the
        // `panicked` status is never resumed, only retried).
        if let (Some(w), SweepOutcome::Panicked(_)) = (&writer, &outcome) {
            let line = checkpoint_line(idx, &keys[idx], &outcome);
            let mut w = w.lock().unwrap();
            let _ = w.write_all(line.as_bytes()).and_then(|()| w.flush());
        }
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_flag_parses() {
        let args: Vec<String> = ["x", "--jobs", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(jobs_flag(&args), Some(3));
        let none: Vec<String> = vec!["--jobs".into(), "zero".into()];
        assert_eq!(jobs_flag(&none), None);
        assert_eq!(jobs_flag(&[]), None);
    }

    #[test]
    fn cache_returns_same_point_and_encodes_once() {
        let cache = EncodeCache::new();
        let a = cache.point(64, 64, 0.5, 1);
        let b = cache.point(64, 64, 0.5, 1);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one entry");
        assert_eq!(cache.len(), 1);
        // Distinct sparsity is a distinct point.
        let c = cache.point(64, 64, 0.6, 1);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        // Encodings are built once per *format*, not per kernel:
        // Sputnik and cuSPARSE both read CSR and share one container.
        let sputnik = kernel_by_name("Sputnik").unwrap();
        let cusparse = kernel_by_name("cuSPARSE").unwrap();
        let e1 = a.encoded_for(&sputnik);
        let e2 = b.encoded_for(&cusparse);
        assert!(e1.shares_encoding(&e2), "CSR must encode once per point");
        assert!(!e1.shares_encoding(&c.encoded_for(&sputnik)));
    }

    #[test]
    fn matrix_cache_generates_once_and_records_metrics() {
        let cache = EncodeCache::new();
        let a = cache.matrices().sparse(64, 64, 0.5, ValueDist::Uniform, 3);
        let b = cache.matrices().sparse(64, 64, 0.5, ValueDist::Uniform, 3);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one matrix");
        assert_eq!(*a, random_sparse(64, 64, 0.5, ValueDist::Uniform, 3));
        assert_eq!((cache.matrices().hits(), cache.matrices().misses()), (1, 1));
        // Dense and sparse generation points never collide in the key
        // space, even at identical shape/dist/seed.
        let d = cache.matrices().dense(64, 64, ValueDist::Uniform, 3);
        assert_eq!(*d, random_dense(64, 64, ValueDist::Uniform, 3));

        // An encode point reuses the cached weight and counts one build
        // per format no matter how often it is requested.
        let point = cache.point(64, 64, 0.5, 3);
        assert!(std::ptr::eq(point.weight(), &*a));
        let kernel = kernel_by_name("SpInfer").unwrap();
        let _ = point.encoded_for(&kernel);
        let _ = point.encoded_for(&kernel);
        assert_eq!(cache.encodes(), 1, "second request must reuse");

        let mut reg = spinfer_obs::Registry::new();
        cache.record_metrics(&mut reg);
        assert_eq!(reg.counter("setup.matrix_cache_misses"), 2);
        assert_eq!(reg.counter("setup.matrix_cache_hits"), 2);
        assert_eq!(reg.counter("setup.encodes"), 1);
        assert!(reg.gauge("setup.generate_s") > 0.0);
        assert!(reg.gauge("setup.encode_s") > 0.0);
    }

    #[test]
    fn analytic_grid_matches_serial_map() {
        let spec = GpuSpec::rtx4090();
        let points: Vec<SweepPoint> = [0.4, 0.6]
            .iter()
            .flat_map(|&s| {
                [KernelKind::SpInfer, KernelKind::CublasTc]
                    .into_iter()
                    .map(move |kernel| SweepPoint {
                        m: 1024,
                        k: 1024,
                        n: 16,
                        sparsity: s,
                        kernel,
                    })
            })
            .collect();
        let serial: Vec<f64> = points
            .iter()
            .map(|p| p.kernel.time_us(&spec, p.m, p.k, p.n, p.sparsity))
            .collect();
        assert_eq!(run_grid(&spec, points), serial);
    }

    fn small_grid() -> Vec<SweepPoint> {
        [0.4, 0.6]
            .iter()
            .flat_map(|&s| {
                [KernelKind::SpInfer, KernelKind::CublasTc]
                    .into_iter()
                    .map(move |kernel| SweepPoint {
                        m: 512,
                        k: 512,
                        n: 16,
                        sparsity: s,
                        kernel,
                    })
            })
            .collect()
    }

    #[test]
    fn hardened_grid_without_checkpoint_matches_plain_grid() {
        let spec = GpuSpec::rtx4090();
        let points = small_grid();
        let plain = run_grid(&spec, points.clone());
        let hardened = run_grid_hardened(&spec, points, None, false).expect("no I/O involved");
        let times: Vec<f64> = hardened
            .iter()
            .map(|o| o.time_us().expect("no point panics"))
            .collect();
        assert_eq!(times, plain);
    }

    #[test]
    fn hardened_grid_isolates_panics_and_resumes_from_checkpoint() {
        let spec = GpuSpec::rtx4090();
        let points = small_grid();
        let path = std::env::temp_dir().join(format!(
            "spinfer_sweep_ckpt_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        // First pass: point 2 is poisoned and panics mid-sweep.
        let first = run_grid_hardened_with(points.clone(), Some(&path), false, |i, p| {
            if i == 2 {
                panic!("poisoned grid point");
            }
            p.kernel.time_us(&spec, p.m, p.k, p.n, p.sparsity)
        })
        .expect("checkpoint writes");
        assert_eq!(first.len(), 4);
        for (i, o) in first.iter().enumerate() {
            match o {
                SweepOutcome::Done(t) if i != 2 => assert!(t.is_finite() && *t > 0.0),
                SweepOutcome::Panicked(msg) if i == 2 => {
                    assert!(msg.contains("poisoned"), "payload survives: {msg}");
                }
                other => panic!("point {i}: unexpected outcome {other:?}"),
            }
        }

        // A crash-truncated trailing line must not break the parser.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"idx\":7,\"key\":\"trunc").unwrap();
        }

        // Resume: completed points load from the checkpoint, the
        // panicked point re-runs (healthy this time).
        let second = run_grid_hardened_with(points.clone(), Some(&path), true, |_, p| {
            p.kernel.time_us(&spec, p.m, p.k, p.n, p.sparsity)
        })
        .expect("resume reads");
        let reference = run_grid(&spec, points);
        for (i, (o, want)) in second.iter().zip(&reference).enumerate() {
            match o {
                SweepOutcome::Resumed(t) if i != 2 => assert_eq!(t, want, "point {i}"),
                SweepOutcome::Done(t) if i == 2 => assert_eq!(t, want, "retried point"),
                other => panic!("point {i}: unexpected outcome {other:?}"),
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_rejects_stale_keys() {
        let spec = GpuSpec::rtx4090();
        let points = small_grid();
        let path = std::env::temp_dir().join(format!(
            "spinfer_sweep_stale_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        // A checkpoint written for a *different* grid: keys won't match.
        std::fs::write(
            &path,
            "{\"idx\":0,\"key\":\"m1k1n1s0.0000xNope\",\"status\":\"done\",\"time_us\":1.0}\n",
        )
        .unwrap();
        let out = run_grid_hardened(&spec, points, Some(&path), true).unwrap();
        assert!(
            out.iter().all(|o| matches!(o, SweepOutcome::Done(_))),
            "stale rows must be re-run, not resumed: {out:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(field("{\"a\":\"x\",\"b\":3}", "a"), Some("x"));
        assert_eq!(field("{\"a\":\"x\",\"b\":3}", "b"), Some("3"));
        assert_eq!(field("{\"a\":\"x\"", "missing"), None);
    }

    #[test]
    fn functional_grid_matches_direct_runs() {
        let spec = GpuSpec::rtx4090();
        let mk = 64usize;
        let points: Vec<SweepPoint> = [KernelKind::SpInfer, KernelKind::FlashLlm]
            .into_iter()
            .flat_map(|kernel| {
                [8usize, 16].into_iter().map(move |n| SweepPoint {
                    m: mk,
                    k: mk,
                    n,
                    sparsity: 0.6,
                    kernel,
                })
            })
            .collect();
        let runs = run_functional_grid(&spec, points.clone(), 9);
        for (p, r) in points.iter().zip(&runs) {
            // Rebuild the point without the cache: identical output.
            let direct = run_functional(&EncodeCache::new(), &spec, p, 9);
            assert_eq!(r.output, direct.output, "{:?} n={}", p.kernel, p.n);
        }
    }
}
