//! Parallel sweep runner: fans benchmark grid points across host cores
//! and encodes each weight matrix exactly once.
//!
//! Figure-scale experiments evaluate a grid of (shape, sparsity, N,
//! kernel) points. Every point is an independent pure function of its
//! inputs, so the grid fans out over `gpu_sim::exec`'s worker pool —
//! results come back in point order and simulated times are identical
//! at any job count (host parallelism only changes wall-clock; see
//! `docs/TIMING_MODEL.md`). The job count follows `gpu_sim::exec`
//! resolution: [`configure_jobs`] (`--jobs N`) → `SPINFER_JOBS` →
//! available hardware threads.
//!
//! Functional sweeps additionally share an [`EncodeCache`]: a (shape,
//! sparsity) point generates its weight matrix and encodes TCA-BME /
//! CSR / Tiled-CSL / SparTA / BCSR at most once each, reused across
//! all batch sizes and kernels that touch the point.

use crate::KernelKind;
use gpu_sim::exec;
use gpu_sim::matrix::{random_dense, random_sparse, DenseMatrix, ValueDist};
use gpu_sim::spec::GpuSpec;
use spinfer_baselines::kernels::{
    CublasGemm, CusparseSpmm, FlashLlmSpmm, SmatSpmm, SpartaSpmm, SputnikSpmm,
};
use spinfer_baselines::{Bcsr, Csr, SpartaFormat, TiledCsl};
use spinfer_core::spmm::SpmmRun;
use spinfer_core::{SpinferSpmm, TcaBme};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Parses a `--jobs N` command-line override.
pub fn jobs_flag(args: &[String]) -> Option<usize> {
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

/// Applies a `--jobs N` override (if present) to the process-wide
/// worker count used by every parallel primitive.
pub fn configure_jobs(args: &[String]) {
    if let Some(n) = jobs_flag(args) {
        exec::set_jobs(n);
    }
}

/// One grid point of a kernel sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Weight rows.
    pub m: usize,
    /// Weight columns (reduction dimension).
    pub k: usize,
    /// Batch size (columns of X).
    pub n: usize,
    /// Weight sparsity in `[0, 1]`.
    pub sparsity: f64,
    /// Kernel under test.
    pub kernel: KernelKind,
}

/// Fans arbitrary grid points across host cores; results in point
/// order, identical to a serial map at any job count.
pub fn par_points<I, R, F>(points: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    exec::par_map(points, f)
}

/// Analytic sweep: simulated time in microseconds per point, in point
/// order.
pub fn run_grid(spec: &GpuSpec, points: Vec<SweepPoint>) -> Vec<f64> {
    par_points(points, |p| {
        p.kernel.time_us(spec, p.m, p.k, p.n, p.sparsity)
    })
}

/// A weight matrix with every kernel encoding built lazily, at most
/// once, behind `OnceLock` (concurrent first callers block rather than
/// re-encode).
pub struct EncodedWeights {
    weight: DenseMatrix,
    tca_bme: OnceLock<TcaBme>,
    csr: OnceLock<Csr>,
    tiled_csl: OnceLock<TiledCsl>,
    sparta: OnceLock<SpartaFormat>,
    bcsr: OnceLock<Bcsr>,
}

impl EncodedWeights {
    fn new(m: usize, k: usize, sparsity: f64, seed: u64) -> Self {
        EncodedWeights {
            weight: random_sparse(m, k, sparsity, ValueDist::Uniform, seed),
            tca_bme: OnceLock::new(),
            csr: OnceLock::new(),
            tiled_csl: OnceLock::new(),
            sparta: OnceLock::new(),
            bcsr: OnceLock::new(),
        }
    }

    /// The dense weight matrix.
    pub fn weight(&self) -> &DenseMatrix {
        &self.weight
    }

    /// TCA-BME encoding (SpInfer), built on first use.
    pub fn tca_bme(&self) -> &TcaBme {
        self.tca_bme.get_or_init(|| TcaBme::encode(&self.weight))
    }

    /// CSR encoding (Sputnik, cuSPARSE), built on first use.
    pub fn csr(&self) -> &Csr {
        self.csr.get_or_init(|| Csr::encode(&self.weight))
    }

    /// Tiled-CSL encoding (Flash-LLM), built on first use.
    pub fn tiled_csl(&self) -> &TiledCsl {
        self.tiled_csl
            .get_or_init(|| TiledCsl::encode(&self.weight))
    }

    /// 2:4 + CSR decomposition (SparTA), built on first use.
    pub fn sparta(&self) -> &SpartaFormat {
        self.sparta
            .get_or_init(|| SpartaFormat::encode(&self.weight))
    }

    /// BCSR encoding (SMaT), built on first use.
    pub fn bcsr(&self) -> &Bcsr {
        self.bcsr.get_or_init(|| Bcsr::encode(&self.weight))
    }
}

/// Cache key: (m, k, sparsity in basis points, seed).
type PointKey = (usize, usize, u32, u64);

/// Encode-once cache over (m, k, sparsity, seed) weight points.
#[derive(Default)]
pub struct EncodeCache {
    points: Mutex<HashMap<PointKey, Arc<EncodedWeights>>>,
}

impl EncodeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared weights for a (shape, sparsity) point, generating
    /// them on first request. Sparsity is keyed at basis-point
    /// resolution.
    pub fn point(&self, m: usize, k: usize, sparsity: f64, seed: u64) -> Arc<EncodedWeights> {
        let key = (m, k, (sparsity * 1e4).round() as u32, seed);
        self.points
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::new(EncodedWeights::new(m, k, sparsity, seed)))
            .clone()
    }

    /// Number of distinct weight points generated so far.
    pub fn len(&self) -> usize {
        self.points.lock().unwrap().len()
    }

    /// Whether no point has been generated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Functional execution of one grid point through the encode cache.
///
/// The weight matrix is seeded by `seed` and X by a value derived from
/// `seed` and the point's batch size, so a grid point's result is a
/// pure function of `(point, seed)` — independent of sweep order and
/// job count.
pub fn run_functional(cache: &EncodeCache, spec: &GpuSpec, p: &SweepPoint, seed: u64) -> SpmmRun {
    let enc = cache.point(p.m, p.k, p.sparsity, seed);
    let x = random_dense(
        p.k,
        p.n,
        ValueDist::Uniform,
        seed ^ (p.n as u64).rotate_left(32),
    );
    match p.kernel {
        KernelKind::CublasTc => CublasGemm::new().run(spec, enc.weight(), &x),
        KernelKind::SpInfer => SpinferSpmm::new().run(spec, enc.tca_bme(), &x),
        KernelKind::FlashLlm => FlashLlmSpmm::new().run_encoded(spec, enc.tiled_csl(), &x),
        KernelKind::SparTa => SpartaSpmm::new().run_encoded(spec, enc.sparta(), &x),
        KernelKind::Sputnik => SputnikSpmm::new().run_encoded(spec, enc.csr(), &x),
        KernelKind::CuSparse => CusparseSpmm::new().run_encoded(spec, enc.csr(), &x),
        KernelKind::Smat => SmatSpmm::new().run_encoded(spec, enc.bcsr(), &x),
    }
}

/// Functional sweep: fans every point across host cores through one
/// shared [`EncodeCache`], so each (shape, sparsity) encodes once no
/// matter how many batch sizes and kernels visit it.
pub fn run_functional_grid(spec: &GpuSpec, points: Vec<SweepPoint>, seed: u64) -> Vec<SpmmRun> {
    let cache = EncodeCache::new();
    par_points(points, |p| run_functional(&cache, spec, &p, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_flag_parses() {
        let args: Vec<String> = ["x", "--jobs", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(jobs_flag(&args), Some(3));
        let none: Vec<String> = vec!["--jobs".into(), "zero".into()];
        assert_eq!(jobs_flag(&none), None);
        assert_eq!(jobs_flag(&[]), None);
    }

    #[test]
    fn cache_returns_same_point_and_encodes_once() {
        let cache = EncodeCache::new();
        let a = cache.point(64, 64, 0.5, 1);
        let b = cache.point(64, 64, 0.5, 1);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one entry");
        assert_eq!(cache.len(), 1);
        // Distinct sparsity is a distinct point.
        let c = cache.point(64, 64, 0.6, 1);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        // Encodings are built once and shared thereafter.
        let csr1 = a.csr() as *const Csr;
        let csr2 = b.csr() as *const Csr;
        assert_eq!(csr1, csr2);
    }

    #[test]
    fn analytic_grid_matches_serial_map() {
        let spec = GpuSpec::rtx4090();
        let points: Vec<SweepPoint> = [0.4, 0.6]
            .iter()
            .flat_map(|&s| {
                [KernelKind::SpInfer, KernelKind::CublasTc]
                    .into_iter()
                    .map(move |kernel| SweepPoint {
                        m: 1024,
                        k: 1024,
                        n: 16,
                        sparsity: s,
                        kernel,
                    })
            })
            .collect();
        let serial: Vec<f64> = points
            .iter()
            .map(|p| p.kernel.time_us(&spec, p.m, p.k, p.n, p.sparsity))
            .collect();
        assert_eq!(run_grid(&spec, points), serial);
    }

    #[test]
    fn functional_grid_matches_direct_runs() {
        let spec = GpuSpec::rtx4090();
        let mk = 64usize;
        let points: Vec<SweepPoint> = [KernelKind::SpInfer, KernelKind::FlashLlm]
            .into_iter()
            .flat_map(|kernel| {
                [8usize, 16].into_iter().map(move |n| SweepPoint {
                    m: mk,
                    k: mk,
                    n,
                    sparsity: 0.6,
                    kernel,
                })
            })
            .collect();
        let runs = run_functional_grid(&spec, points.clone(), 9);
        for (p, r) in points.iter().zip(&runs) {
            // Rebuild the point without the cache: identical output.
            let direct = run_functional(&EncodeCache::new(), &spec, p, 9);
            assert_eq!(r.output, direct.output, "{:?} n={}", p.kernel, p.n);
        }
    }
}
