//! Perf-snapshot harness: the measurement rail every perf PR is judged
//! against.
//!
//! A snapshot measures, at one benchmark point (default: the fig01 hero
//! shape, LLaMA2-70B's 28672×8192 FFN projection at 60% sparsity, N=16):
//!
//! * **Host wall-clock** of the functional `SpinferSpmm::run` at
//!   `--jobs 1` (the serial hot path this repository optimises) and at
//!   the default job count (how the serial speedup multiplies with the
//!   PR 1 parallel engine), plus weight generation + encode time.
//! * **Simulated kernel time** (µs) for the full kernel roster from the
//!   analytic estimators — pinned here so a host-side optimisation that
//!   accidentally changes *simulated* results is visible in the diff of
//!   `BENCH_kernels.json`.
//!
//! The snapshot is emitted as JSON (no external serializer — the format
//! is flat) by `spinfer snapshot` and `scripts/bench_snapshot.sh`, and
//! the committed `BENCH_kernels.json` forms the perf trajectory across
//! PRs.

use crate::sweep::{EncodeCache, SweepPoint};
use crate::{KernelKind, HERO_K, HERO_M};
use gpu_sim::exec;
use gpu_sim::matrix::checksum_f32;
use gpu_sim::spec::GpuSpec;
use std::fmt::Write as _;
use std::time::Instant;

/// The benchmark point a snapshot measures.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotConfig {
    /// Weight rows.
    pub m: usize,
    /// Weight columns (reduction dimension).
    pub k: usize,
    /// Batch size (columns of X).
    pub n: usize,
    /// Weight sparsity.
    pub sparsity: f64,
    /// Weight/X generation seed.
    pub seed: u64,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            m: HERO_M,
            k: HERO_K,
            n: 16,
            sparsity: 0.6,
            seed: 0,
        }
    }
}

/// One measured snapshot.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The point measured.
    pub config: SnapshotConfig,
    /// GPU spec name the simulated times refer to.
    pub gpu: String,
    /// Default host job count at measurement time.
    pub default_jobs: usize,
    /// Seconds to generate the weight matrix and X.
    pub gen_s: f64,
    /// Seconds to encode the weight to TCA-BME.
    pub encode_s: f64,
    /// Functional `SpinferSpmm::run` wall-clock at `--jobs 1`.
    pub spinfer_functional_jobs1_s: f64,
    /// Functional `SpinferSpmm::run` wall-clock at the default job count.
    pub spinfer_functional_default_s: f64,
    /// FNV digest of the functional FP32 output (regression tripwire).
    pub output_checksum: u64,
    /// Simulated time of the functional run in µs.
    pub spinfer_simulated_us: f64,
    /// `(label, simulated µs)` for the full analytic kernel roster.
    pub simulated_us: Vec<(&'static str, f64)>,
}

/// The roster whose simulated times a snapshot pins.
fn roster() -> [KernelKind; 7] {
    [
        KernelKind::CublasTc,
        KernelKind::SpInfer,
        KernelKind::FlashLlm,
        KernelKind::SparTa,
        KernelKind::Sputnik,
        KernelKind::CuSparse,
        KernelKind::Smat,
    ]
}

/// Measures one snapshot. The functional run executes twice (once at
/// `--jobs 1`, once at the default job count); job count never changes
/// simulated results, so the checksum is asserted identical across both.
pub fn measure(spec: &GpuSpec, cfg: &SnapshotConfig) -> Snapshot {
    let point = SweepPoint {
        m: cfg.m,
        k: cfg.k,
        n: cfg.n,
        sparsity: cfg.sparsity,
        kernel: KernelKind::SpInfer,
    };

    let cache = EncodeCache::new();
    let t0 = Instant::now();
    let enc = cache.point(cfg.m, cfg.k, cfg.sparsity, cfg.seed);
    let gen_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let spinfer = spinfer_baselines::kernel_by_name("SpInfer").expect("registered");
    let _ = enc.encoded_for(&spinfer);
    let encode_s = t0.elapsed().as_secs_f64();

    let default_jobs = exec::num_jobs();
    exec::set_jobs(1);
    let t0 = Instant::now();
    let serial = crate::sweep::run_functional(&cache, spec, &point, cfg.seed);
    let spinfer_functional_jobs1_s = t0.elapsed().as_secs_f64();
    exec::set_jobs(0);
    let t0 = Instant::now();
    let pooled = crate::sweep::run_functional(&cache, spec, &point, cfg.seed);
    let spinfer_functional_default_s = t0.elapsed().as_secs_f64();

    let serial_out = serial.output.as_ref().expect("functional output");
    let pooled_out = pooled.output.as_ref().expect("functional output");
    let output_checksum = checksum_f32(serial_out);
    assert_eq!(
        output_checksum,
        checksum_f32(pooled_out),
        "job count changed the functional output"
    );

    let simulated_us = roster()
        .iter()
        .map(|&kind| {
            (
                kind.label(),
                kind.time_us(spec, cfg.m, cfg.k, cfg.n, cfg.sparsity),
            )
        })
        .collect();

    Snapshot {
        config: *cfg,
        gpu: spec.name.to_string(),
        default_jobs,
        gen_s,
        encode_s,
        spinfer_functional_jobs1_s,
        spinfer_functional_default_s,
        output_checksum,
        spinfer_simulated_us: serial.time_us(),
        simulated_us,
    }
}

impl Snapshot {
    /// Renders the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"spinfer-bench-snapshot/v1\",");
        let _ = writeln!(s, "  \"gpu\": \"{}\",", self.gpu);
        let _ = writeln!(
            s,
            "  \"shape\": {{ \"m\": {}, \"k\": {}, \"n\": {}, \"sparsity\": {}, \"seed\": {} }},",
            self.config.m, self.config.k, self.config.n, self.config.sparsity, self.config.seed
        );
        let _ = writeln!(s, "  \"default_jobs\": {},", self.default_jobs);
        let _ = writeln!(s, "  \"wall_clock_s\": {{");
        let _ = writeln!(s, "    \"generate\": {:.3},", self.gen_s);
        let _ = writeln!(s, "    \"encode\": {:.3},", self.encode_s);
        let _ = writeln!(
            s,
            "    \"spinfer_functional_jobs1\": {:.3},",
            self.spinfer_functional_jobs1_s
        );
        let _ = writeln!(
            s,
            "    \"spinfer_functional_default\": {:.3}",
            self.spinfer_functional_default_s
        );
        let _ = writeln!(s, "  }},");
        let _ = writeln!(
            s,
            "  \"output_checksum\": \"{:#018x}\",",
            self.output_checksum
        );
        let _ = writeln!(
            s,
            "  \"spinfer_functional_simulated_us\": {:.3},",
            self.spinfer_simulated_us
        );
        let _ = writeln!(s, "  \"simulated_us\": {{");
        for (i, (label, us)) in self.simulated_us.iter().enumerate() {
            let comma = if i + 1 == self.simulated_us.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(s, "    \"{label}\": {us:.3}{comma}");
        }
        let _ = writeln!(s, "  }}");
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_snapshot_is_consistent() {
        let spec = GpuSpec::rtx4090();
        let cfg = SnapshotConfig {
            m: 128,
            k: 128,
            n: 16,
            sparsity: 0.6,
            seed: 7,
        };
        let snap = measure(&spec, &cfg);
        assert!(snap.spinfer_functional_jobs1_s >= 0.0);
        assert!(snap.spinfer_simulated_us > 0.0);
        assert_eq!(snap.simulated_us.len(), 7);
        let json = snap.to_json();
        assert!(json.contains("\"spinfer_functional_jobs1\""));
        assert!(json.contains("\"cuBLAS_TC\""));
        assert!(json.contains("output_checksum"));
    }
}
