//! Perf-snapshot harness: the measurement rail every perf PR is judged
//! against.
//!
//! A snapshot measures, at one benchmark point (default: the fig01 hero
//! shape, LLaMA2-70B's 28672×8192 FFN projection at 60% sparsity, N=16):
//!
//! * **Host wall-clock** of the functional `SpinferSpmm::run` at
//!   `--jobs 1` (the serial hot path this repository optimises) and at
//!   the default job count (how the serial speedup multiplies with the
//!   PR 1 parallel engine), plus weight generation + encode time.
//! * **Simulated kernel time** (µs) for the full kernel roster from the
//!   analytic estimators — pinned here so a host-side optimisation that
//!   accidentally changes *simulated* results is visible in the diff of
//!   `BENCH_kernels.json`.
//!
//! The snapshot is emitted as JSON (no external serializer — the format
//! is flat) by `spinfer snapshot` and `scripts/bench_snapshot.sh`, and
//! the committed `BENCH_kernels.json` forms the perf trajectory across
//! PRs: rewriting the file *appends* the previous measurement (git rev +
//! wall-clock map) to a `history` array instead of discarding it, so
//! the trajectory reads straight out of one file.

use crate::sweep::{EncodeCache, SweepPoint};
use crate::{KernelKind, HERO_K, HERO_M};
use gpu_sim::exec;
use gpu_sim::matrix::checksum_f32;
use gpu_sim::spec::GpuSpec;
use std::fmt::Write as _;
use std::time::Instant;

/// The benchmark point a snapshot measures.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotConfig {
    /// Weight rows.
    pub m: usize,
    /// Weight columns (reduction dimension).
    pub k: usize,
    /// Batch size (columns of X).
    pub n: usize,
    /// Weight sparsity.
    pub sparsity: f64,
    /// Weight/X generation seed.
    pub seed: u64,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            m: HERO_M,
            k: HERO_K,
            n: 16,
            sparsity: 0.6,
            seed: 0,
        }
    }
}

/// One prior measurement carried forward in a snapshot's `history`
/// array: which commit it was taken at and its wall-clock map.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryEntry {
    /// Short git rev the entry was measured at (`"unknown"` outside a
    /// git checkout).
    pub rev: String,
    /// `(label, seconds)` pairs of the entry's `wall_clock_s` object.
    pub wall_clock: Vec<(String, f64)>,
}

/// One measured snapshot.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The point measured.
    pub config: SnapshotConfig,
    /// GPU spec name the simulated times refer to.
    pub gpu: String,
    /// Short git rev at measurement time (`"unknown"` outside git).
    pub rev: String,
    /// Prior measurements, oldest first; extend with [`carry_history`]
    /// before overwriting an existing snapshot file.
    pub history: Vec<HistoryEntry>,
    /// Default host job count at measurement time.
    pub default_jobs: usize,
    /// Seconds to generate the weight matrix and X.
    pub gen_s: f64,
    /// Seconds to encode the weight to TCA-BME.
    pub encode_s: f64,
    /// Functional `SpinferSpmm::run` wall-clock at `--jobs 1`.
    pub spinfer_functional_jobs1_s: f64,
    /// Functional `SpinferSpmm::run` wall-clock at the default job count.
    pub spinfer_functional_default_s: f64,
    /// Wall-clock of a small chaos-armed fleet simulation (the
    /// `spinfer cluster` event loop); budget-gated so the cluster layer
    /// can't silently regress into an event-storm.
    pub cluster_smoke_s: f64,
    /// Wall-clock of a short speculative-decoding serving run (the
    /// `spinfer spec` tree-verify loop); budget-gated so the draft/verify
    /// planner can't silently regress into per-step overhead.
    pub spec_smoke_s: f64,
    /// Wall-clock of the toy precision×format ablation (the
    /// `spinfer quant` grid at smoke sizes); budget-gated so the INT8
    /// datapath and quantize/serialize machinery can't silently regress.
    pub quant_smoke_s: f64,
    /// FNV digest of the functional FP32 output (regression tripwire).
    pub output_checksum: u64,
    /// Simulated time of the functional run in µs.
    pub spinfer_simulated_us: f64,
    /// `(label, simulated µs)` for the full analytic kernel roster.
    pub simulated_us: Vec<(&'static str, f64)>,
}

/// The roster whose simulated times a snapshot pins.
fn roster() -> [KernelKind; 8] {
    [
        KernelKind::CublasTc,
        KernelKind::SpInfer,
        KernelKind::SpInferInt8,
        KernelKind::FlashLlm,
        KernelKind::SparTa,
        KernelKind::Sputnik,
        KernelKind::CuSparse,
        KernelKind::Smat,
    ]
}

/// Measures one snapshot. The functional run executes twice (once at
/// `--jobs 1`, once at the default job count); job count never changes
/// simulated results, so the checksum is asserted identical across both.
pub fn measure(spec: &GpuSpec, cfg: &SnapshotConfig) -> Snapshot {
    let point = SweepPoint {
        m: cfg.m,
        k: cfg.k,
        n: cfg.n,
        sparsity: cfg.sparsity,
        kernel: KernelKind::SpInfer,
    };

    let cache = EncodeCache::new();
    let t0 = Instant::now();
    let enc = cache.point(cfg.m, cfg.k, cfg.sparsity, cfg.seed);
    let gen_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let spinfer = spinfer_baselines::kernel_by_name("SpInfer").expect("registered");
    let _ = enc.encoded_for(&spinfer);
    let encode_s = t0.elapsed().as_secs_f64();

    let default_jobs = exec::num_jobs();
    exec::set_jobs(1);
    let t0 = Instant::now();
    let serial = crate::sweep::run_functional(&cache, spec, &point, cfg.seed);
    let spinfer_functional_jobs1_s = t0.elapsed().as_secs_f64();
    exec::set_jobs(0);
    let t0 = Instant::now();
    let pooled = crate::sweep::run_functional(&cache, spec, &point, cfg.seed);
    let spinfer_functional_default_s = t0.elapsed().as_secs_f64();

    let serial_out = serial.output.as_ref().expect("functional output");
    let pooled_out = pooled.output.as_ref().expect("functional output");
    let output_checksum = checksum_f32(serial_out);
    assert_eq!(
        output_checksum,
        checksum_f32(pooled_out),
        "job count changed the functional output"
    );

    let simulated_us = roster()
        .iter()
        .map(|&kind| {
            (
                kind.label(),
                kind.time_us(spec, cfg.m, cfg.k, cfg.n, cfg.sparsity),
            )
        })
        .collect();

    // Fleet smoke: a short chaos-armed cluster run. The simulated
    // horizon is fixed, so the wall-clock tracks event-loop and
    // cost-model overhead, not the scenario.
    let cluster_cfg = spinfer_llm::ClusterConfig {
        replicas: 2,
        arrival_rps: 2.0,
        duration_sec: 10.0,
        max_batch: 8,
        input_len: 128,
        output_len: 16,
        ..spinfer_llm::ClusterConfig::default()
    };
    let cluster_plan = spinfer_llm::ClusterFaultPlan {
        seed: 1234,
        crash_rate: 0.02,
        slow_rate: 0.02,
        launch_fail_rate: 0.02,
        ..spinfer_llm::ClusterFaultPlan::default()
    };
    let t0 = Instant::now();
    spinfer_llm::simulate_cluster(spec, &cluster_cfg, Some(&cluster_plan))
        .expect("snapshot cluster smoke config is valid");
    let cluster_smoke_s = t0.elapsed().as_secs_f64();

    // Speculation smoke: a short high-acceptance tree-verify serving run.
    // Like the fleet smoke, the simulated horizon is fixed — the
    // wall-clock tracks the per-iteration draft/plan/verify bookkeeping.
    let serving_cfg = spinfer_llm::ServingConfig {
        model: spinfer_llm::ModelConfig::opt_13b(),
        framework: spinfer_llm::Framework::SpInfer,
        sparsity: 0.6,
        tp: 1,
        max_batch: 8,
        arrival_rps: 4.0,
        input_len: 64,
        output_len: 32,
        duration_sec: 10.0,
        mix: spinfer_llm::LengthMix::Uniform,
    };
    let spec_cfg = spinfer_llm::SpecConfig {
        acceptance_rate: 0.8,
        ..spinfer_llm::SpecConfig::default()
    };
    let t0 = Instant::now();
    spinfer_llm::serve_spec(spec, &serving_cfg, &spec_cfg);
    let spec_smoke_s = t0.elapsed().as_secs_f64();

    // Quantization smoke: the toy precision×format ablation grid. Both
    // precisions run functionally at every point, so the wall-clock
    // tracks the INT8 datapath plus the quantize/serialize machinery.
    let t0 = Instant::now();
    crate::quant::run(spec, &crate::quant::QuantConfig::smoke(), None, false)
        .expect("smoke ablation has no checkpoint I/O");
    let quant_smoke_s = t0.elapsed().as_secs_f64();

    Snapshot {
        config: *cfg,
        gpu: spec.name.to_string(),
        rev: git_short_rev(),
        history: Vec::new(),
        default_jobs,
        gen_s,
        encode_s,
        spinfer_functional_jobs1_s,
        spinfer_functional_default_s,
        cluster_smoke_s,
        spec_smoke_s,
        quant_smoke_s,
        output_checksum,
        spinfer_simulated_us: serial.time_us(),
        simulated_us,
    }
}

impl Snapshot {
    /// Renders the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"spinfer-bench-snapshot/v2\",");
        let _ = writeln!(s, "  \"gpu\": \"{}\",", self.gpu);
        let _ = writeln!(s, "  \"rev\": \"{}\",", self.rev);
        let _ = writeln!(
            s,
            "  \"shape\": {{ \"m\": {}, \"k\": {}, \"n\": {}, \"sparsity\": {}, \"seed\": {} }},",
            self.config.m, self.config.k, self.config.n, self.config.sparsity, self.config.seed
        );
        let _ = writeln!(s, "  \"default_jobs\": {},", self.default_jobs);
        let _ = writeln!(s, "  \"wall_clock_s\": {{");
        let _ = writeln!(s, "    \"generate\": {:.3},", self.gen_s);
        let _ = writeln!(s, "    \"encode\": {:.3},", self.encode_s);
        let _ = writeln!(
            s,
            "    \"spinfer_functional_jobs1\": {:.3},",
            self.spinfer_functional_jobs1_s
        );
        let _ = writeln!(
            s,
            "    \"spinfer_functional_default\": {:.3},",
            self.spinfer_functional_default_s
        );
        let _ = writeln!(s, "    \"cluster_smoke\": {:.3},", self.cluster_smoke_s);
        let _ = writeln!(s, "    \"spec_smoke\": {:.3},", self.spec_smoke_s);
        let _ = writeln!(s, "    \"quant_smoke\": {:.3}", self.quant_smoke_s);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(
            s,
            "  \"output_checksum\": \"{:#018x}\",",
            self.output_checksum
        );
        let _ = writeln!(
            s,
            "  \"spinfer_functional_simulated_us\": {:.3},",
            self.spinfer_simulated_us
        );
        let _ = writeln!(s, "  \"simulated_us\": {{");
        for (i, (label, us)) in self.simulated_us.iter().enumerate() {
            let comma = if i + 1 == self.simulated_us.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(s, "    \"{label}\": {us:.3}{comma}");
        }
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"history\": [");
        for (i, entry) in self.history.iter().enumerate() {
            let mut wc = String::new();
            for (j, (label, secs)) in entry.wall_clock.iter().enumerate() {
                let comma = if j + 1 == entry.wall_clock.len() {
                    ""
                } else {
                    ", "
                };
                let _ = write!(wc, "\"{label}\": {secs:.3}{comma}");
            }
            let comma = if i + 1 == self.history.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{ \"rev\": \"{}\", \"wall_clock_s\": {{ {wc} }} }}{comma}",
                entry.rev
            );
        }
        let _ = writeln!(s, "  ]");
        s.push_str("}\n");
        s
    }
}

/// Short git rev of the working tree, or `"unknown"` when git (or the
/// repository) is unavailable — snapshots must still measure outside a
/// checkout.
pub fn git_short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Parses a previously written snapshot JSON and returns its history
/// extended with its own latest measurement — what a new snapshot
/// overwriting the same file should carry so no data point is lost.
/// Tolerant of pre-`v2` files (no `rev`/`history`: the old latest is
/// carried as rev `"unknown"`) and of unparseable input (empty
/// history).
pub fn carry_history(prev_json: &str) -> Vec<HistoryEntry> {
    let Ok(prev) = spinfer_obs::json::parse(prev_json) else {
        return Vec::new();
    };
    let wall_clock_of = |v: &spinfer_obs::json::Value| -> Vec<(String, f64)> {
        v.get("wall_clock_s")
            .and_then(|w| {
                w.as_obj()
                    .map(<[(String, spinfer_obs::json::Value)]>::to_vec)
            })
            .unwrap_or_default()
            .iter()
            .filter_map(|(label, val)| val.as_f64().map(|f| (label.clone(), f)))
            .collect()
    };
    let mut history: Vec<HistoryEntry> = prev
        .get("history")
        .and_then(|h| h.as_arr().map(<[spinfer_obs::json::Value]>::to_vec))
        .unwrap_or_default()
        .iter()
        .map(|entry| HistoryEntry {
            rev: entry
                .get("rev")
                .and_then(|r| r.as_str())
                .unwrap_or("unknown")
                .to_string(),
            wall_clock: wall_clock_of(entry),
        })
        .collect();
    let latest = HistoryEntry {
        rev: prev
            .get("rev")
            .and_then(|r| r.as_str())
            .unwrap_or("unknown")
            .to_string(),
        wall_clock: wall_clock_of(&prev),
    };
    if !latest.wall_clock.is_empty() {
        history.push(latest);
    }
    history
}

/// Extracts one `wall_clock_s.<label>` entry from a snapshot JSON —
/// the numbers perf budgets compare against.
pub fn wall_clock_of(json: &str, label: &str) -> Option<f64> {
    spinfer_obs::json::parse(json)
        .ok()?
        .get("wall_clock_s")?
        .get(label)?
        .as_f64()
}

/// Extracts `wall_clock_s.spinfer_functional_jobs1` from a snapshot
/// JSON.
pub fn jobs1_of(json: &str) -> Option<f64> {
    wall_clock_of(json, "spinfer_functional_jobs1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_snapshot_is_consistent() {
        let spec = GpuSpec::rtx4090();
        let cfg = SnapshotConfig {
            m: 128,
            k: 128,
            n: 16,
            sparsity: 0.6,
            seed: 7,
        };
        let snap = measure(&spec, &cfg);
        assert!(snap.spinfer_functional_jobs1_s >= 0.0);
        assert!(snap.spinfer_simulated_us > 0.0);
        assert_eq!(snap.simulated_us.len(), 8);
        let json = snap.to_json();
        assert!(json.contains("\"spinfer_functional_jobs1\""));
        assert!(json.contains("\"cuBLAS_TC\""));
        assert!(json.contains("output_checksum"));
        assert!(json.contains("\"rev\""));
        assert!(json.contains("\"history\""));
        assert!(jobs1_of(&json).is_some());
        // The setup phases are first-class budget targets.
        assert!(wall_clock_of(&json, "generate").is_some());
        assert!(wall_clock_of(&json, "encode").is_some());
        assert!(wall_clock_of(&json, "cluster_smoke").is_some());
        assert!(snap.cluster_smoke_s >= 0.0);
        assert!(wall_clock_of(&json, "spec_smoke").is_some());
        assert!(snap.spec_smoke_s >= 0.0);
        assert!(wall_clock_of(&json, "quant_smoke").is_some());
        assert!(snap.quant_smoke_s >= 0.0);
        assert_eq!(wall_clock_of(&json, "no_such_label"), None);
    }

    #[test]
    fn history_accumulates_across_rewrites() {
        // Overwriting a snapshot file must carry the old latest entry
        // (and everything already in its history) forward.
        let mut snap = Snapshot {
            config: SnapshotConfig::default(),
            gpu: "RTX4090".to_string(),
            rev: "aaa1111".to_string(),
            history: Vec::new(),
            default_jobs: 1,
            gen_s: 1.0,
            encode_s: 2.0,
            spinfer_functional_jobs1_s: 6.5,
            spinfer_functional_default_s: 6.6,
            cluster_smoke_s: 0.1,
            spec_smoke_s: 0.05,
            quant_smoke_s: 0.02,
            output_checksum: 0x1234,
            spinfer_simulated_us: 100.0,
            simulated_us: vec![("SpInfer", 100.0)],
        };
        let first = snap.to_json();

        snap.rev = "bbb2222".to_string();
        snap.spinfer_functional_jobs1_s = 2.0;
        snap.history = carry_history(&first);
        assert_eq!(snap.history.len(), 1);
        assert_eq!(snap.history[0].rev, "aaa1111");
        let jobs1: Vec<f64> = snap.history[0]
            .wall_clock
            .iter()
            .filter(|(l, _)| l == "spinfer_functional_jobs1")
            .map(|&(_, s)| s)
            .collect();
        assert_eq!(jobs1, vec![6.5]);

        let second = snap.to_json();
        let carried = carry_history(&second);
        assert_eq!(carried.len(), 2, "history chain must keep growing");
        assert_eq!(carried[0].rev, "aaa1111");
        assert_eq!(carried[1].rev, "bbb2222");
        assert_eq!(jobs1_of(&second), Some(2.0));
    }

    #[test]
    fn carry_history_tolerates_v1_and_garbage() {
        // Pre-history files have no rev: the latest is carried as
        // "unknown". Unparseable input yields an empty history.
        let v1 = r#"{
            "schema": "spinfer-bench-snapshot/v1",
            "wall_clock_s": { "spinfer_functional_jobs1": 6.501 }
        }"#;
        let carried = carry_history(v1);
        assert_eq!(carried.len(), 1);
        assert_eq!(carried[0].rev, "unknown");
        assert_eq!(
            carried[0].wall_clock,
            vec![("spinfer_functional_jobs1".to_string(), 6.501)]
        );
        assert!(carry_history("not json").is_empty());
        assert!(carry_history("{}").is_empty());
    }
}
