//! Sparsity-pattern statistics.
//!
//! TCA-BME's kernel behaviour depends on *where* zeros fall, not just how
//! many there are: per-BitmapTile non-zero counts size the value gathers,
//! per-row balance affects split-K fairness, and empty-tile fractions
//! drive the high-sparsity regime. These statistics connect pruner output
//! to kernel models.

use gpu_sim::matrix::DenseMatrix;

/// Summary of a sparse matrix's pattern.
#[derive(Clone, Debug, PartialEq)]
pub struct SparsityStats {
    /// Overall zero fraction.
    pub sparsity: f64,
    /// Mean non-zeros per row.
    pub row_nnz_mean: f64,
    /// Standard deviation of per-row non-zeros.
    pub row_nnz_std: f64,
    /// Fraction of 8×8 BitmapTiles with no non-zeros.
    pub empty_bt_fraction: f64,
    /// Mean non-zeros in a non-empty BitmapTile.
    pub bt_nnz_mean: f64,
}

/// Computes pattern statistics.
pub fn analyze(matrix: &DenseMatrix) -> SparsityStats {
    let m = matrix.rows();
    let k = matrix.cols();
    let total = (m * k) as f64;
    let mut row_counts = Vec::with_capacity(m);
    for r in 0..m {
        row_counts.push((0..k).filter(|&c| !matrix.get(r, c).is_zero()).count());
    }
    let nnz: usize = row_counts.iter().sum();
    let mean = nnz as f64 / m.max(1) as f64;
    let var = row_counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / m.max(1) as f64;

    let bty = m.div_ceil(8);
    let btx = k.div_ceil(8);
    let mut empty = 0usize;
    let mut nonempty_nnz = 0usize;
    for by in 0..bty {
        for bx in 0..btx {
            let mut cnt = 0usize;
            for lr in 0..8 {
                for lc in 0..8 {
                    let (r, c) = (by * 8 + lr, bx * 8 + lc);
                    if r < m && c < k && !matrix.get(r, c).is_zero() {
                        cnt += 1;
                    }
                }
            }
            if cnt == 0 {
                empty += 1;
            } else {
                nonempty_nnz += cnt;
            }
        }
    }
    let bts = bty * btx;
    SparsityStats {
        sparsity: 1.0 - nnz as f64 / total,
        row_nnz_mean: mean,
        row_nnz_std: var.sqrt(),
        empty_bt_fraction: empty as f64 / bts.max(1) as f64,
        bt_nnz_mean: if bts == empty {
            0.0
        } else {
            nonempty_nnz as f64 / (bts - empty) as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruners::magnitude_prune;
    use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};

    #[test]
    fn uniform_sparse_has_few_empty_tiles_at_50_percent() {
        let m = random_sparse(256, 256, 0.5, ValueDist::Uniform, 301);
        let s = analyze(&m);
        assert!((s.sparsity - 0.5).abs() < 0.02);
        assert!(s.empty_bt_fraction < 1e-3);
        assert!((s.bt_nnz_mean - 32.0).abs() < 2.0);
    }

    #[test]
    fn per_row_pruning_is_balanced() {
        let w = random_dense(64, 256, ValueDist::Normal { std: 0.05 }, 302);
        let p = magnitude_prune(&w, 0.6);
        let s = analyze(&p);
        // Exactly the same keep-count per row.
        assert!(s.row_nnz_std < 1.0, "std {}", s.row_nnz_std);
    }

    #[test]
    fn extreme_sparsity_empties_tiles() {
        let m = random_sparse(256, 256, 0.995, ValueDist::Uniform, 303);
        let s = analyze(&m);
        assert!(s.empty_bt_fraction > 0.5);
    }

    #[test]
    fn zero_matrix() {
        let s = analyze(&DenseMatrix::zeros(64, 64));
        assert_eq!(s.sparsity, 1.0);
        assert_eq!(s.empty_bt_fraction, 1.0);
        assert_eq!(s.bt_nnz_mean, 0.0);
    }
}
