//! Unstructured and semi-structured weight pruners.
//!
//! The paper relies on state-of-the-art one-shot pruning (SparseGPT,
//! Wanda) reaching ~50-60% unstructured sparsity with acceptable accuracy;
//! SpInfer's job is to turn that sparsity into speed. This module
//! implements the pruning side:
//!
//! * [`magnitude_prune`] — classic per-row |W| threshold.
//! * [`wanda_prune`] — Wanda's `|W| · ‖X_j‖₂` metric (Sun et al., ICLR'24)
//!   with per-output-row comparison groups, no weight update.
//! * [`sparsegpt_prune`] — OBS-style block pruning (Frantar & Alistarh,
//!   ICML'23): within each column block, prune by `w² / [H⁻¹]_jj` and
//!   compensate remaining in-block weights with the exact OBS update.
//! * [`nm_prune`] — N:M semi-structured (2:4) pruning for the SparTA
//!   decomposition comparison.

use crate::calibration::Calibration;
use gpu_sim::fp16::Half;
use gpu_sim::matrix::DenseMatrix;

/// Prunes each row to `sparsity` by smallest absolute value.
pub fn magnitude_prune(weights: &DenseMatrix, sparsity: f64) -> DenseMatrix {
    prune_rows_by_metric(weights, sparsity, |w, _c| w.to_f32().abs())
}

/// Wanda: prune per output row by the metric `|W_ij| · ‖X_j‖₂`.
/// # Examples
///
/// ```
/// use gpu_sim::matrix::{random_dense, ValueDist};
/// use spinfer_pruning::{wanda_prune, Calibration};
///
/// let w = random_dense(32, 64, ValueDist::Normal { std: 0.05 }, 0);
/// let calib = Calibration::synthetic(64, 16, 1);
/// let pruned = wanda_prune(&w, &calib, 0.5);
/// assert!((pruned.sparsity() - 0.5).abs() < 0.05);
/// ```
pub fn wanda_prune(weights: &DenseMatrix, calib: &Calibration, sparsity: f64) -> DenseMatrix {
    assert_eq!(
        weights.cols(),
        calib.features(),
        "calibration features must match K"
    );
    let norms = calib.feature_norms();
    prune_rows_by_metric(weights, sparsity, |w, c| w.to_f32().abs() * norms[c])
}

/// SparseGPT-style pruning: per row, process columns in blocks of
/// `block`; within a block, repeatedly remove the weight with the least
/// saliency `w² / [H⁻¹]_jj` (diagonal-damped Hessian restricted to the
/// block) and apply the OBS compensation `w ← w − w_p · H⁻¹ e_p / [H⁻¹]_pp`
/// to the surviving in-block weights.
pub fn sparsegpt_prune(
    weights: &DenseMatrix,
    calib: &Calibration,
    sparsity: f64,
    block: usize,
) -> DenseMatrix {
    assert_eq!(weights.cols(), calib.features());
    assert!(block > 0);
    let m = weights.rows();
    let k = weights.cols();
    let x = &calib.activations;
    let samples = x.cols();
    let damping = 0.01 * (calib.hessian_diagonal(0.0).iter().sum::<f32>() / k as f32).max(1e-6);

    let mut out = DenseMatrix::zeros(m, k);
    let mut hinv_buf = vec![0.0f64; block * block];
    for c0 in (0..k).step_by(block) {
        let b = block.min(k - c0);
        // Block Hessian H = X_b X_bᵀ + λI, then invert (Gauss-Jordan; the
        // block is small).
        let mut h = vec![0.0f64; b * b];
        for i in 0..b {
            for j in i..b {
                let mut s = 0.0f64;
                for t in 0..samples {
                    s +=
                        f64::from(x.get(c0 + i, t).to_f32()) * f64::from(x.get(c0 + j, t).to_f32());
                }
                h[i * b + j] = s;
                h[j * b + i] = s;
            }
            h[i * b + i] += f64::from(damping);
        }
        invert_spd(&mut h, &mut hinv_buf, b);
        let hinv = &hinv_buf[..b * b];

        let prune_per_row = ((b as f64) * sparsity).round() as usize;
        for r in 0..m {
            let mut w: Vec<f64> = (0..b)
                .map(|j| f64::from(weights.get(r, c0 + j).to_f32()))
                .collect();
            let mut pruned = vec![false; b];
            for _ in 0..prune_per_row {
                // Least-saliency surviving weight.
                let mut best = usize::MAX;
                let mut best_s = f64::INFINITY;
                for j in 0..b {
                    if !pruned[j] {
                        let s = w[j] * w[j] / hinv[j * b + j];
                        if s < best_s {
                            best_s = s;
                            best = j;
                        }
                    }
                }
                if best == usize::MAX {
                    break;
                }
                // OBS compensation on the survivors.
                let wp = w[best];
                let hpp = hinv[best * b + best];
                for j in 0..b {
                    if j != best && !pruned[j] {
                        w[j] -= wp * hinv[best * b + j] / hpp;
                    }
                }
                w[best] = 0.0;
                pruned[best] = true;
            }
            for j in 0..b {
                out.set(
                    r,
                    c0 + j,
                    if pruned[j] {
                        Half::ZERO
                    } else {
                        Half::from_f32(w[j] as f32)
                    },
                );
            }
        }
    }
    out
}

/// N:M semi-structured pruning: keep the `n` largest-metric weights in
/// every group of `m_group` consecutive row elements (2:4 by default in
/// callers). Uses the Wanda metric when calibration is supplied.
pub fn nm_prune(
    weights: &DenseMatrix,
    calib: Option<&Calibration>,
    n: usize,
    m_group: usize,
) -> DenseMatrix {
    assert!(n <= m_group && m_group > 0);
    let norms = calib.map(Calibration::feature_norms);
    let rows = weights.rows();
    let k = weights.cols();
    let mut out = DenseMatrix::zeros(rows, k);
    for r in 0..rows {
        for g0 in (0..k).step_by(m_group) {
            let ge = (g0 + m_group).min(k);
            let mut idx: Vec<usize> = (g0..ge).collect();
            idx.sort_by(|&a, &b| {
                let ma = metric(weights.get(r, a), a, norms.as_deref());
                let mb = metric(weights.get(r, b), b, norms.as_deref());
                mb.total_cmp(&ma)
            });
            for &c in idx.iter().take(n) {
                out.set(r, c, weights.get(r, c));
            }
        }
    }
    out
}

fn metric(w: Half, c: usize, norms: Option<&[f32]>) -> f32 {
    let base = w.to_f32().abs();
    match norms {
        Some(n) => base * n[c],
        None => base,
    }
}

/// Shared per-row top-k pruning machinery.
fn prune_rows_by_metric<F: Fn(Half, usize) -> f32>(
    weights: &DenseMatrix,
    sparsity: f64,
    metric: F,
) -> DenseMatrix {
    assert!((0.0..=1.0).contains(&sparsity));
    let m = weights.rows();
    let k = weights.cols();
    let keep = ((k as f64) * (1.0 - sparsity)).round() as usize;
    let mut out = DenseMatrix::zeros(m, k);
    let mut idx: Vec<usize> = (0..k).collect();
    for r in 0..m {
        idx.sort_by(|&a, &b| metric(weights.get(r, b), b).total_cmp(&metric(weights.get(r, a), a)));
        for &c in idx.iter().take(keep) {
            out.set(r, c, weights.get(r, c));
        }
    }
    out
}

/// In-place inversion of a symmetric positive-definite `n×n` matrix via
/// Gauss-Jordan with partial pivoting; result written to `out`.
fn invert_spd(a: &mut [f64], out: &mut [f64], n: usize) {
    // Initialise out = I.
    for v in out.iter_mut().take(n * n) {
        *v = 0.0;
    }
    for i in 0..n {
        out[i * n + i] = 1.0;
    }
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        if piv != col {
            for j in 0..n {
                a.swap(col * n + j, piv * n + j);
                out.swap(col * n + j, piv * n + j);
            }
        }
        let d = a[col * n + col];
        assert!(d.abs() > 1e-12, "singular Hessian block");
        for j in 0..n {
            a[col * n + j] /= d;
            out[col * n + j] /= d;
        }
        for r in 0..n {
            if r != col {
                let f = a[r * n + col];
                if f != 0.0 {
                    for j in 0..n {
                        a[r * n + j] -= f * a[col * n + j];
                        out[r * n + j] -= f * out[col * n + j];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_dense, ValueDist};

    fn base() -> (DenseMatrix, Calibration) {
        (
            random_dense(32, 128, ValueDist::Normal { std: 0.05 }, 101),
            Calibration::synthetic(128, 64, 102),
        )
    }

    #[test]
    fn magnitude_hits_target_sparsity() {
        let (w, _) = base();
        let p = magnitude_prune(&w, 0.5);
        assert!((p.sparsity() - 0.5).abs() < 0.02);
    }

    #[test]
    fn magnitude_keeps_largest() {
        let w = DenseMatrix::from_f32(1, 4, &[0.1, -0.9, 0.5, -0.2]);
        let p = magnitude_prune(&w, 0.5);
        assert!(p.get(0, 0).is_zero());
        assert_eq!(p.get(0, 1), Half::from_f32(-0.9));
        assert_eq!(p.get(0, 2), Half::from_f32(0.5));
        assert!(p.get(0, 3).is_zero());
    }

    #[test]
    fn wanda_differs_from_magnitude_under_skewed_activations() {
        let (w, c) = base();
        let pm = magnitude_prune(&w, 0.5);
        let pw = wanda_prune(&w, &c, 0.5);
        assert!((pw.sparsity() - 0.5).abs() < 0.02);
        assert_ne!(pm, pw, "heavy-tailed norms must change the kept set");
    }

    #[test]
    fn sparsegpt_hits_target_and_compensates() {
        let (w, c) = base();
        let p = sparsegpt_prune(&w, &c, 0.5, 32);
        assert!(
            (p.sparsity() - 0.5).abs() < 0.03,
            "sparsity {}",
            p.sparsity()
        );
        // Compensation must beat no-compensation (Wanda mask) on the
        // calibration output error.
        let pw = wanda_prune(&w, &c, 0.5);
        let err_gpt = output_error(&w, &p, &c);
        let err_wanda = output_error(&w, &pw, &c);
        assert!(
            err_gpt < err_wanda,
            "sparsegpt {err_gpt} should beat wanda {err_wanda}"
        );
    }

    fn output_error(dense: &DenseMatrix, pruned: &DenseMatrix, c: &Calibration) -> f64 {
        let yd = dense.matmul_ref(&c.activations);
        let yp = pruned.matmul_ref(&c.activations);
        let num: f64 = yd
            .iter()
            .zip(&yp)
            .map(|(a, b)| f64::from(a - b) * f64::from(a - b))
            .sum();
        let den: f64 = yd.iter().map(|a| f64::from(*a) * f64::from(*a)).sum();
        (num / den.max(1e-12)).sqrt()
    }

    #[test]
    fn nm_prune_enforces_2_4_pattern() {
        let (w, _) = base();
        let p = nm_prune(&w, None, 2, 4);
        for r in 0..p.rows() {
            for g in (0..p.cols()).step_by(4) {
                let nnz = (g..(g + 4).min(p.cols()))
                    .filter(|&c| !p.get(r, c).is_zero())
                    .count();
                assert!(nnz <= 2, "row {r} group {g} has {nnz} non-zeros");
            }
        }
        assert!((p.sparsity() - 0.5).abs() < 0.05);
    }

    #[test]
    fn zero_sparsity_is_identity() {
        let (w, _) = base();
        assert_eq!(magnitude_prune(&w, 0.0), w);
    }

    #[test]
    fn full_sparsity_is_zero() {
        let (w, _) = base();
        assert_eq!(magnitude_prune(&w, 1.0).nnz(), 0);
    }

    #[test]
    fn invert_spd_small_known() {
        // [[2,0],[0,4]]^-1 = [[0.5,0],[0,0.25]]
        let mut a = vec![2.0, 0.0, 0.0, 4.0];
        let mut out = vec![0.0; 4];
        invert_spd(&mut a, &mut out, 2);
        assert!((out[0] - 0.5).abs() < 1e-12);
        assert!((out[3] - 0.25).abs() < 1e-12);
        assert!(out[1].abs() < 1e-12);
    }
}
