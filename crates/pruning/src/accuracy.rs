//! Accuracy proxy for pruned models.
//!
//! The paper reports that Wanda at 60% sparsity keeps OPT-13B at WikiText
//! perplexity 15.9 (dense ≈ 10.1) and leans on the pruning literature for
//! accuracy; SpInfer itself is numerically exact given the pruned weights.
//! Without trained checkpoints we proxy accuracy by *layer output
//! reconstruction error* on calibration activations — the quantity
//! one-shot pruners actually minimise — and map it to a pseudo-perplexity
//! for reporting. The mapping is calibrated so that the Wanda/60%
//! operating point reproduces the paper's quoted number.

use crate::calibration::Calibration;
use gpu_sim::matrix::DenseMatrix;

/// Relative L2 error of the pruned layer's output on calibration data:
/// `‖(W − Ws)X‖₂ / ‖WX‖₂`.
pub fn reconstruction_error(dense: &DenseMatrix, pruned: &DenseMatrix, calib: &Calibration) -> f64 {
    assert_eq!(dense.rows(), pruned.rows());
    assert_eq!(dense.cols(), pruned.cols());
    let yd = dense.matmul_ref(&calib.activations);
    let yp = pruned.matmul_ref(&calib.activations);
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (a, b) in yd.iter().zip(&yp) {
        num += f64::from(a - b) * f64::from(a - b);
        den += f64::from(*a) * f64::from(*a);
    }
    (num / den.max(1e-12)).sqrt()
}

/// Dense-model reference perplexity used by the proxy (OPT-13B WikiText).
pub const DENSE_PPL: f64 = 10.13;
/// Calibrated sensitivity of the pseudo-perplexity to reconstruction
/// error: chosen so Wanda at 60% (error ≈ 0.33 on synthetic layers) lands
/// at the paper's quoted 15.9.
pub const PPL_SENSITIVITY: f64 = 1.37;

/// Maps a mean layer reconstruction error to a pseudo-perplexity.
///
/// This is a reporting proxy, not a language-model evaluation; see
/// `DESIGN.md` for the substitution rationale.
pub fn pseudo_perplexity(mean_reconstruction_error: f64) -> f64 {
    DENSE_PPL * (PPL_SENSITIVITY * mean_reconstruction_error).exp()
}

/// Relative L2 error the INT8 payload adds on top of pruning: the pruned
/// layer's output against the prune-then-quantise layer's output, on the
/// same calibration activations as [`reconstruction_error`].
///
/// Measured against the *pruned* reference (not the dense one) so it
/// isolates the quantisation contribution — the two errors compose in
/// [`pseudo_perplexity_quantized`].
pub fn quantization_error(pruned: &DenseMatrix, calib: &Calibration) -> f64 {
    let enc = spinfer_core::tca_bme::TcaBme::encode(pruned);
    let deq = crate::quant::QuantizedTcaBme::quantize(&enc)
        .dequantize()
        .decode();
    reconstruction_error(pruned, &deq, calib)
}

/// Pseudo-perplexity for a pruned *and* INT8-quantised layer.
///
/// The two error sources are independent to first order (pruning removes
/// positions, quantisation perturbs surviving values), so their relative
/// L2 contributions add in quadrature before the calibrated mapping.
pub fn pseudo_perplexity_quantized(
    mean_reconstruction_error: f64,
    mean_quantization_error: f64,
) -> f64 {
    let combined = (mean_reconstruction_error.powi(2) + mean_quantization_error.powi(2)).sqrt();
    pseudo_perplexity(combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruners::{magnitude_prune, wanda_prune};
    use gpu_sim::matrix::{random_dense, ValueDist};

    #[test]
    fn error_is_zero_for_identical_weights() {
        let w = random_dense(16, 64, ValueDist::Normal { std: 0.05 }, 201);
        let c = Calibration::synthetic(64, 32, 202);
        assert!(reconstruction_error(&w, &w, &c) < 1e-6);
    }

    #[test]
    fn error_grows_with_sparsity() {
        let w = random_dense(32, 128, ValueDist::Normal { std: 0.05 }, 203);
        let c = Calibration::synthetic(128, 64, 204);
        let e50 = reconstruction_error(&w, &magnitude_prune(&w, 0.5), &c);
        let e70 = reconstruction_error(&w, &magnitude_prune(&w, 0.7), &c);
        assert!(e70 > e50);
        assert!(e50 > 0.0);
    }

    #[test]
    fn wanda_beats_magnitude_on_reconstruction() {
        // The reason Wanda is the paper's pruner of choice.
        let w = random_dense(48, 256, ValueDist::Normal { std: 0.05 }, 205);
        let c = Calibration::synthetic(256, 128, 206);
        let em = reconstruction_error(&w, &magnitude_prune(&w, 0.6), &c);
        let ew = reconstruction_error(&w, &wanda_prune(&w, &c, 0.6), &c);
        assert!(ew < em, "wanda {ew} vs magnitude {em}");
    }

    #[test]
    fn pseudo_perplexity_anchors() {
        assert!((pseudo_perplexity(0.0) - DENSE_PPL).abs() < 1e-9);
        // Wanda/60% operating point lands near the paper's 15.9.
        let ppl = pseudo_perplexity(0.33);
        assert!((ppl - 15.9).abs() < 0.5, "ppl {ppl}");
    }

    #[test]
    fn pseudo_perplexity_monotone() {
        assert!(pseudo_perplexity(0.5) > pseudo_perplexity(0.3));
    }

    #[test]
    fn quantization_error_is_small_relative_to_pruning() {
        // Symmetric per-GroupTile INT8 keeps the added error a couple of
        // orders below the pruning error at the paper's operating point.
        let w = random_dense(32, 128, ValueDist::Normal { std: 0.05 }, 207);
        let c = Calibration::synthetic(128, 64, 208);
        let pruned = wanda_prune(&w, &c, 0.6);
        let eq = quantization_error(&pruned, &c);
        let ep = reconstruction_error(&w, &pruned, &c);
        assert!(eq > 0.0, "quantisation must perturb something");
        assert!(eq < 0.02, "int8 error {eq} unexpectedly large");
        assert!(eq < ep / 5.0, "quant {eq} should be well below prune {ep}");
    }

    #[test]
    fn quantized_pseudo_perplexity_composes() {
        // No quantisation error ⇒ identical to the pruning-only proxy;
        // adding it can only push the proxy up, and by less than the sum
        // of the parts (quadrature, not linear).
        let base = pseudo_perplexity(0.33);
        assert!((pseudo_perplexity_quantized(0.33, 0.0) - base).abs() < 1e-12);
        let with_q = pseudo_perplexity_quantized(0.33, 0.01);
        assert!(with_q > base);
        assert!(with_q < pseudo_perplexity(0.33 + 0.01));
    }
}
