//! Synthetic calibration data for pruning metrics.
//!
//! Wanda and SparseGPT-style pruners need activation statistics from a
//! calibration set. The paper uses WikiText through the dense model; we
//! substitute activations with realistic statistics: per-feature scales
//! are log-normal-ish (LLM hidden features have heavy-tailed norms — the
//! reason Wanda's `|W| · ‖X‖₂` metric differs from plain magnitude).

use gpu_sim::fp16::Half;
use gpu_sim::matrix::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A calibration batch: `features × samples` activations (column = one
/// token position).
#[derive(Clone, Debug)]
pub struct Calibration {
    /// Activation matrix, `k × samples`.
    pub activations: DenseMatrix,
}

impl Calibration {
    /// Generates a synthetic calibration batch with heavy-tailed
    /// per-feature scales.
    pub fn synthetic(features: usize, samples: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Per-feature scale: exp(N(0, 1)) — a few features dominate.
        let scales: Vec<f32> = (0..features)
            .map(|_| {
                let z: f32 = (0..12).map(|_| rng.gen::<f32>()).sum::<f32>() - 6.0;
                z.exp() * 0.1
            })
            .collect();
        let mut acts = DenseMatrix::zeros(features, samples);
        for f in 0..features {
            for s in 0..samples {
                let z: f32 = (0..12).map(|_| rng.gen::<f32>()).sum::<f32>() - 6.0;
                acts.set(f, s, Half::from_f32(z * scales[f]));
            }
        }
        Calibration { activations: acts }
    }

    /// Number of features (the weight matrix's K dimension).
    pub fn features(&self) -> usize {
        self.activations.rows()
    }

    /// L2 norm of each feature row — Wanda's `‖X_j‖₂`.
    pub fn feature_norms(&self) -> Vec<f32> {
        let k = self.activations.rows();
        let s = self.activations.cols();
        (0..k)
            .map(|f| {
                let sum: f64 = (0..s)
                    .map(|j| {
                        let v = f64::from(self.activations.get(f, j).to_f32());
                        v * v
                    })
                    .sum();
                (sum as f32).sqrt()
            })
            .collect()
    }

    /// Diagonal of the (damped) Hessian `X Xᵀ + λI` — SparseGPT's
    /// second-order signal.
    pub fn hessian_diagonal(&self, damping: f32) -> Vec<f32> {
        self.feature_norms()
            .iter()
            .map(|n| n * n + damping)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let c = Calibration::synthetic(64, 32, 1);
        assert_eq!(c.features(), 64);
        assert_eq!(c.activations.cols(), 32);
        assert_eq!(c.feature_norms().len(), 64);
    }

    #[test]
    fn norms_are_heavy_tailed() {
        let c = Calibration::synthetic(512, 64, 2);
        let mut norms = c.feature_norms();
        norms.sort_by(f32::total_cmp);
        let median = norms[256];
        let p99 = norms[506];
        assert!(p99 > 4.0 * median, "p99 {p99} vs median {median}");
    }

    #[test]
    fn hessian_diag_includes_damping() {
        let c = Calibration::synthetic(16, 8, 3);
        let h0 = c.hessian_diagonal(0.0);
        let h1 = c.hessian_diagonal(1.0);
        for (a, b) in h0.iter().zip(&h1) {
            assert!((b - a - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Calibration::synthetic(32, 16, 7);
        let b = Calibration::synthetic(32, 16, 7);
        assert_eq!(a.activations, b.activations);
    }
}
