//! INT8 quantisation composed with TCA-BME (paper §2.3).
//!
//! The paper positions SpInfer as *complementary* to weight quantisation:
//! the bitmap indexes positions, so nothing stops the packed `Values`
//! array from holding INT8 instead of FP16. This module implements that
//! composition — per-GroupTile symmetric INT8 quantisation of the values
//! array, bitmaps and offsets unchanged — roughly halving storage again
//! on top of the sparsity win.

use gpu_sim::fp16::Half;
use gpu_sim::spec::GpuSpec;
use spinfer_core::spmm::{FormatStats, SpinferSpmm, SpmmRun};
use spinfer_core::tca_bme::TcaBme;

/// TCA-BME with INT8 values and per-GroupTile scales.
#[derive(Clone, Debug)]
pub struct QuantizedTcaBme {
    /// The geometry (bitmaps, offsets) of the underlying encoding; its
    /// `values` are retained only for shape, not read.
    pub geometry: TcaBme,
    /// INT8 values, same ordering/padding as the FP16 array.
    pub values_i8: Vec<i8>,
    /// One dequantisation scale per GroupTile.
    pub scales: Vec<f32>,
}

impl QuantizedTcaBme {
    /// Quantises an encoded matrix: per GroupTile, `scale = max|v| / 127`.
    pub fn quantize(w: &TcaBme) -> Self {
        let ngt = w.num_gtiles();
        let mut values_i8 = vec![0i8; w.values.len()];
        let mut scales = vec![0.0f32; ngt];
        for gt in 0..ngt {
            let s = w.gtile_offsets[gt] as usize;
            let e = w.gtile_offsets[gt + 1] as usize;
            let max = w.values[s..e]
                .iter()
                .map(|v| v.to_f32().abs())
                .fold(0.0f32, f32::max);
            let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
            scales[gt] = scale;
            for (dst, src) in values_i8[s..e].iter_mut().zip(&w.values[s..e]) {
                *dst = (src.to_f32() / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
        QuantizedTcaBme {
            geometry: w.clone(),
            values_i8,
            scales,
        }
    }

    /// Dequantises back to an FP16-valued encoding.
    pub fn dequantize(&self) -> TcaBme {
        let mut out = self.geometry.clone();
        for gt in 0..out.num_gtiles() {
            let s = out.gtile_offsets[gt] as usize;
            let e = out.gtile_offsets[gt + 1] as usize;
            let scale = self.scales[gt];
            for (dst, &q) in out.values[s..e].iter_mut().zip(&self.values_i8[s..e]) {
                *dst = Half::from_f32(f32::from(q) * scale);
            }
        }
        out
    }

    /// Storage bytes: INT8 values + scales + bitmaps + offsets.
    pub fn storage_bytes(&self) -> usize {
        self.values_i8.len()
            + 4 * self.scales.len()
            + 8 * self.geometry.bitmaps.len()
            + 4 * self.geometry.gtile_offsets.len()
    }

    /// Compression ratio vs the dense FP16 matrix.
    pub fn compression_ratio(&self) -> f64 {
        (2 * self.geometry.m * self.geometry.k) as f64 / self.storage_bytes() as f64
    }

    /// Worst-case relative quantisation error bound per GroupTile
    /// (half a quantisation step over the tile maximum).
    pub fn relative_error_bound(&self) -> f64 {
        0.5 / 127.0
    }

    /// Analytic kernel estimate for the quantised weights: value traffic
    /// halves (1 B/value); the in-register dequantisation rides under the
    /// asynchronous pipeline like SMBD does.
    pub fn estimate(&self, spec: &GpuSpec, n: usize) -> SpmmRun {
        let mut stats = FormatStats::from_encoded(&self.geometry);
        // FormatStats accounts values at 2 B each; halve the element count
        // to model 1 B values (padding included).
        stats.values_len = stats.values_len.div_ceil(2);
        stats.max_values_per_gtile = stats.max_values_per_gtile.div_ceil(2);
        SpinferSpmm::new().estimate(spec, &stats, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{max_abs_diff, random_dense, random_sparse, ValueDist};

    fn encoded(sparsity: f64, seed: u64) -> TcaBme {
        TcaBme::encode(&random_sparse(
            256,
            256,
            sparsity,
            ValueDist::Normal { std: 0.05 },
            seed,
        ))
    }

    #[test]
    fn quantise_dequantise_bounded_error() {
        let w = encoded(0.6, 81);
        let q = QuantizedTcaBme::quantize(&w);
        let back = q.dequantize();
        let a = w.decode();
        let b = back.decode();
        // Per-element error ≤ scale/2; scales are per-GroupTile maxima.
        let max_scale = q.scales.iter().copied().fold(0.0f32, f32::max);
        let err = max_abs_diff(
            &a.as_slice().iter().map(|h| h.to_f32()).collect::<Vec<_>>(),
            &b.as_slice().iter().map(|h| h.to_f32()).collect::<Vec<_>>(),
        );
        assert!(
            err <= max_scale * 0.51 + 1e-4,
            "err {err} scale {max_scale}"
        );
    }

    #[test]
    fn no_spurious_nonzeros_appear() {
        // Quantisation may *underflow* small values to zero but must
        // never create a non-zero where the bitmap says zero.
        let w = encoded(0.7, 82);
        let q = QuantizedTcaBme::quantize(&w);
        let orig = w.decode();
        let back = q.dequantize().decode();
        assert!(back.nnz() <= orig.nnz());
        for r in 0..orig.rows() {
            for c in 0..orig.cols() {
                if orig.get(r, c).is_zero() {
                    assert!(back.get(r, c).is_zero(), "spurious non-zero at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn storage_roughly_halves_value_bytes() {
        let w = encoded(0.5, 83);
        let q = QuantizedTcaBme::quantize(&w);
        let fp16 = w.storage_bytes();
        let int8 = q.storage_bytes();
        assert!(int8 < fp16, "int8 {int8} vs fp16 {fp16}");
        // Values dominate at 50% sparsity: expect ~35-50% total reduction.
        let ratio = int8 as f64 / fp16 as f64;
        assert!(ratio > 0.5 && ratio < 0.75, "ratio {ratio}");
        assert!(q.compression_ratio() > w.compression_ratio() * 1.3);
    }

    #[test]
    fn quantised_kernel_is_faster_in_the_memory_bound_regime() {
        let spec = GpuSpec::rtx4090();
        let w = TcaBme::encode(&random_sparse(
            2048,
            2048,
            0.6,
            ValueDist::Normal { std: 0.05 },
            84,
        ));
        let q = QuantizedTcaBme::quantize(&w);
        let t_fp16 = SpinferSpmm::new()
            .estimate(&spec, &FormatStats::from_encoded(&w), 16)
            .time_us();
        let t_int8 = q.estimate(&spec, 16).time_us();
        assert!(t_int8 < t_fp16, "int8 {t_int8} vs fp16 {t_fp16}");
    }

    #[test]
    fn matmul_through_dequantised_weights_is_accurate() {
        let dense = random_sparse(128, 128, 0.5, ValueDist::Normal { std: 0.05 }, 85);
        let x = random_dense(128, 8, ValueDist::Normal { std: 0.5 }, 86);
        let w = TcaBme::encode(&dense);
        let q = QuantizedTcaBme::quantize(&w);
        let reference = dense.matmul_ref(&x);
        let approx = q.dequantize().decode().matmul_ref(&x);
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (a, b) in approx.iter().zip(&reference) {
            num += f64::from(a - b) * f64::from(a - b);
            den += f64::from(*b) * f64::from(*b);
        }
        let rel = (num / den.max(1e-12)).sqrt();
        assert!(rel < 0.02, "relative output error {rel}");
    }

    #[test]
    fn empty_grouptile_gets_unit_scale() {
        let w = TcaBme::encode(&gpu_sim::DenseMatrix::zeros(64, 128));
        let q = QuantizedTcaBme::quantize(&w);
        assert!(q.scales.iter().all(|&s| s == 1.0));
        assert_eq!(q.dequantize().decode().nnz(), 0);
    }
}
