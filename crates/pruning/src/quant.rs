//! INT8 quantisation composed with TCA-BME (paper §2.3).
//!
//! The paper positions SpInfer as *complementary* to weight quantisation:
//! the bitmap indexes positions, so nothing stops the packed `Values`
//! array from holding INT8 instead of FP16. Since the core grew a real
//! INT8 container ([`TcaBmeInt8`]) and a registered kernel
//! (`SpInfer-INT8`), this module is a thin pruning-pipeline adapter over
//! them: quantisation, storage accounting, the analytic estimate, and
//! functional execution all delegate to the core — nothing here
//! re-models the INT8 datapath.

use gpu_sim::fp16::Half;
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::spec::GpuSpec;
use spinfer_core::spmm::{FormatStats, SpmmRun};
use spinfer_core::tca_bme::{TcaBme, TcaBmeInt8};
use spinfer_core::SpinferSpmmInt8;

/// TCA-BME with INT8 values and per-GroupTile scales — a pruning-stack
/// handle over the core container the registered `SpInfer-INT8` kernel
/// launches against.
#[derive(Clone, Debug)]
pub struct QuantizedTcaBme {
    /// The core INT8 container: `i8` codes in the FP16 value layout plus
    /// one dequantisation scale per GroupTile.
    pub inner: TcaBmeInt8,
}

impl QuantizedTcaBme {
    /// Quantises an encoded matrix: per GroupTile, `scale = max|v| / 127`
    /// (the core's symmetric scheme).
    pub fn quantize(w: &TcaBme) -> Self {
        QuantizedTcaBme {
            inner: w.quantize_int8(),
        }
    }

    /// Per-GroupTile dequantisation scale.
    pub fn scale(&self, gt: usize) -> f32 {
        self.inner.scale(gt)
    }

    /// Dequantises back to an FP16-valued encoding: identical geometry
    /// (bitmaps, offsets, padding), each code mapped through its
    /// GroupTile scale.
    pub fn dequantize(&self) -> TcaBme {
        let t = &self.inner.tiles;
        let mut values = Vec::with_capacity(t.values.len());
        for gt in 0..t.num_gtiles() {
            let s = t.gtile_offsets[gt] as usize;
            let e = t.gtile_offsets[gt + 1] as usize;
            let scale = self.inner.scales[gt];
            values.extend(
                t.values[s..e]
                    .iter()
                    .map(|&q| Half::from_f32(f32::from(q) * scale)),
            );
        }
        TcaBme {
            m: t.m,
            k: t.k,
            m_pad: t.m_pad,
            k_pad: t.k_pad,
            config: t.config,
            gtile_offsets: t.gtile_offsets.clone(),
            values,
            bitmaps: t.bitmaps.clone(),
            nnz: t.nnz,
        }
    }

    /// Storage bytes of the INT8 container (codes + scales + bitmaps +
    /// offsets) — the same accounting the serialized v3 container pins.
    pub fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }

    /// Compression ratio vs the dense FP16 matrix.
    pub fn compression_ratio(&self) -> f64 {
        self.inner.compression_ratio()
    }

    /// Worst-case relative quantisation error bound per GroupTile
    /// (half a quantisation step over the tile maximum).
    pub fn relative_error_bound(&self) -> f64 {
        0.5 / 127.0
    }

    /// Analytic kernel estimate — the registered INT8 kernel's own
    /// estimator (half the value traffic, `mma.s8` pricing, scale-fold
    /// instructions), not a local re-model.
    pub fn estimate(&self, spec: &GpuSpec, n: usize) -> SpmmRun {
        SpinferSpmmInt8::new().estimate(spec, &FormatStats::from_encoded(&self.inner.tiles), n)
    }

    /// Functional execution through the registered INT8 kernel.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows()` differs from the container's K.
    pub fn run(&self, spec: &GpuSpec, x: &DenseMatrix) -> SpmmRun {
        SpinferSpmmInt8::new().run(spec, &self.inner, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{max_abs_diff, random_dense, random_sparse, ValueDist};
    use spinfer_core::serialize;
    use spinfer_core::SpinferSpmm;

    fn encoded(sparsity: f64, seed: u64) -> TcaBme {
        TcaBme::encode(&random_sparse(
            256,
            256,
            sparsity,
            ValueDist::Normal { std: 0.05 },
            seed,
        ))
    }

    #[test]
    fn quantise_dequantise_bounded_error() {
        let w = encoded(0.6, 81);
        let q = QuantizedTcaBme::quantize(&w);
        let back = q.dequantize();
        let a = w.decode();
        let b = back.decode();
        // Per-element error ≤ scale/2; scales are per-GroupTile maxima.
        let max_scale = q.inner.scales.iter().copied().fold(0.0f32, f32::max);
        let err = max_abs_diff(
            &a.as_slice().iter().map(|h| h.to_f32()).collect::<Vec<_>>(),
            &b.as_slice().iter().map(|h| h.to_f32()).collect::<Vec<_>>(),
        );
        assert!(
            err <= max_scale * 0.51 + 1e-4,
            "err {err} scale {max_scale}"
        );
    }

    #[test]
    fn no_spurious_nonzeros_appear() {
        // Quantisation may *underflow* small values to zero but must
        // never create a non-zero where the bitmap says zero.
        let w = encoded(0.7, 82);
        let q = QuantizedTcaBme::quantize(&w);
        let orig = w.decode();
        let back = q.dequantize().decode();
        assert!(back.nnz() <= orig.nnz());
        for r in 0..orig.rows() {
            for c in 0..orig.cols() {
                if orig.get(r, c).is_zero() {
                    assert!(back.get(r, c).is_zero(), "spurious non-zero at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn storage_roughly_halves_value_bytes() {
        let w = encoded(0.5, 83);
        let q = QuantizedTcaBme::quantize(&w);
        let fp16 = w.storage_bytes();
        let int8 = q.storage_bytes();
        assert!(int8 < fp16, "int8 {int8} vs fp16 {fp16}");
        // Values dominate at 50% sparsity: expect ~35-50% total reduction.
        let ratio = int8 as f64 / fp16 as f64;
        assert!(ratio > 0.5 && ratio < 0.75, "ratio {ratio}");
        assert!(q.compression_ratio() > w.compression_ratio() * 1.3);
    }

    #[test]
    fn storage_bytes_pins_the_serialized_v3_layout() {
        // The byte accounting must agree with what actually lands on
        // disk: the v3 container is storage_bytes() plus fixed framing
        // (8 B magic + 56 B header + five 8 B section lengths) plus the
        // 4 B/GroupTile integrity checksums.
        for (sparsity, seed) in [(0.3, 91), (0.6, 92), (0.9, 93)] {
            let w = encoded(sparsity, seed);
            let q = QuantizedTcaBme::quantize(&w);
            let disk = serialize::to_bytes_int8(&q.inner).len();
            let framing = 8 + 56 + 5 * 8 + 4 * q.inner.tiles.num_gtiles();
            assert_eq!(
                disk,
                q.storage_bytes() + framing,
                "v3 bytes vs storage accounting at sparsity {sparsity}"
            );
        }
    }

    #[test]
    fn quantised_kernel_is_faster_in_the_memory_bound_regime() {
        let spec = GpuSpec::rtx4090();
        let w = TcaBme::encode(&random_sparse(
            2048,
            2048,
            0.6,
            ValueDist::Normal { std: 0.05 },
            84,
        ));
        let q = QuantizedTcaBme::quantize(&w);
        let t_fp16 = SpinferSpmm::new()
            .estimate(&spec, &FormatStats::from_encoded(&w), 16)
            .time_us();
        let t_int8 = q.estimate(&spec, 16).time_us();
        assert!(t_int8 < t_fp16, "int8 {t_int8} vs fp16 {t_fp16}");
    }

    #[test]
    fn estimate_is_the_registered_kernels_estimate() {
        // Thin-wrapper check: identical launch chain (same simulated
        // time bits and counters) as calling the kernel directly.
        let spec = GpuSpec::rtx4090();
        let w = encoded(0.6, 87);
        let q = QuantizedTcaBme::quantize(&w);
        let via_wrapper = q.estimate(&spec, 16);
        let direct =
            SpinferSpmmInt8::new().estimate(&spec, &FormatStats::from_encoded(&q.inner.tiles), 16);
        assert_eq!(
            via_wrapper.time_us().to_bits(),
            direct.time_us().to_bits(),
            "wrapper must not re-model the kernel"
        );
        assert_eq!(
            via_wrapper.chain.merged_counters(),
            direct.chain.merged_counters()
        );
    }

    #[test]
    fn functional_run_goes_through_the_real_int8_kernel() {
        let spec = GpuSpec::rtx4090();
        let dense = random_sparse(128, 128, 0.5, ValueDist::Normal { std: 0.05 }, 88);
        let x = random_dense(128, 8, ValueDist::Normal { std: 0.5 }, 89);
        let q = QuantizedTcaBme::quantize(&TcaBme::encode(&dense));
        let run = q.run(&spec, &x);
        let direct = SpinferSpmmInt8::new().run(&spec, &q.inner, &x);
        assert_eq!(run.output, direct.output, "same kernel, same bits");
        let rel = {
            let reference = dense.matmul_ref(&x);
            let out = run.output.as_ref().unwrap();
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            for (a, b) in out.iter().zip(&reference) {
                num += f64::from(a - b) * f64::from(a - b);
                den += f64::from(*b) * f64::from(*b);
            }
            (num / den.max(1e-12)).sqrt()
        };
        assert!(rel < 0.02, "relative output error {rel}");
    }

    #[test]
    fn matmul_through_dequantised_weights_is_accurate() {
        let dense = random_sparse(128, 128, 0.5, ValueDist::Normal { std: 0.05 }, 85);
        let x = random_dense(128, 8, ValueDist::Normal { std: 0.5 }, 86);
        let w = TcaBme::encode(&dense);
        let q = QuantizedTcaBme::quantize(&w);
        let reference = dense.matmul_ref(&x);
        let approx = q.dequantize().decode().matmul_ref(&x);
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (a, b) in approx.iter().zip(&reference) {
            num += f64::from(a - b) * f64::from(a - b);
            den += f64::from(*b) * f64::from(*b);
        }
        let rel = (num / den.max(1e-12)).sqrt();
        assert!(rel < 0.02, "relative output error {rel}");
    }

    #[test]
    fn empty_grouptile_gets_unit_scale() {
        let w = TcaBme::encode(&gpu_sim::DenseMatrix::zeros(64, 128));
        let q = QuantizedTcaBme::quantize(&w);
        assert!(q.inner.scales.iter().all(|&s| s == 1.0));
        assert_eq!(q.dequantize().decode().nnz(), 0);
    }
}
