//! # spinfer-pruning — LLM weight pruning
//!
//! One-shot pruners producing the low-level unstructured sparsity SpInfer
//! accelerates (paper §2.3): [`pruners::magnitude_prune`],
//! [`pruners::wanda_prune`], [`pruners::sparsegpt_prune`] (OBS-style with
//! block compensation), and [`pruners::nm_prune`] (2:4). Calibration data
//! is synthesised with heavy-tailed feature norms ([`calibration`]);
//! accuracy is proxied by layer reconstruction error ([`accuracy`]), and
//! [`stats`] connects pruned patterns to kernel-relevant statistics.

// Lane IDs and tile coordinates are semantic indices in GPU-style code;
// iterator rewrites of those loops obscure the hardware mapping.
#![allow(clippy::needless_range_loop)]

pub mod accuracy;
pub mod calibration;
pub mod pruners;
pub mod quant;
pub mod stats;

pub use accuracy::{pseudo_perplexity, reconstruction_error};
pub use calibration::Calibration;
pub use pruners::{magnitude_prune, nm_prune, sparsegpt_prune, wanda_prune};
pub use quant::QuantizedTcaBme;
pub use stats::{analyze, SparsityStats};
