//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of the rand 0.8 API the workspace actually uses:
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, and
//! `Uniform::new_inclusive(..).sample(..)`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, fully deterministic stream. It is *not* the upstream
//! `StdRng` (ChaCha12) stream; every consumer in this workspace seeds
//! explicitly and only relies on determinism and uniformity, both of
//! which hold here.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The `Standard` `f64` mapping applied to one raw 64-bit word — the
/// exact function `gen::<f64>()` applies to the word `next_u64`
/// returns. Exposed so batched samplers that pre-fetch raw words (see
/// [`BufferedRng`](rngs::BufferedRng)) share one source of truth with
/// the per-draw path.
#[inline]
pub fn f64_from_word(w: u64) -> f64 {
    // 53 uniform bits in [0, 1).
    (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The `Standard` `f32` mapping applied to one raw 64-bit word — the
/// exact composition of `next_u32` (high half of the word) and the
/// 24-bit unit-interval mapping `gen::<f32>()` applies.
#[inline]
pub fn f32_from_word(w: u64) -> f32 {
    // 24 uniform bits in [0, 1).
    (((w >> 32) as u32) >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_from_word(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // next_u32 is the high half of next_u64, so one f32 draw
        // consumes exactly one word — the invariant f32_from_word and
        // every block-buffered consumer rely on.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Words a [`BufferedRng`] pre-generates per refill. 4 KiB of
    /// buffer — small enough to stay L1-resident, large enough that the
    /// refill loop amortises per-call overhead away.
    pub const BUFFER_WORDS: usize = 512;

    /// Block-buffered wrapper around any [`RngCore`]: pre-generates up
    /// to [`BUFFER_WORDS`] words per refill and serves every draw from
    /// the buffer. Buffering only moves *when* words are produced,
    /// never their order, so the stream is byte-identical to drawing
    /// from the inner generator directly (pinned by the
    /// `buffered_stream_matches_unbuffered_oracle` test).
    ///
    /// Beyond plain [`RngCore`] draws, [`BufferedRng::buffered`] /
    /// [`BufferedRng::advance`] expose the unconsumed words as a slice
    /// so batched samplers can peek ahead without committing — a
    /// consumer may scan a run of words optimistically and, on a rare
    /// bad case, decline to `advance` and replay the same words through
    /// the exact per-draw path instead.
    #[derive(Clone, Debug)]
    pub struct BufferedRng<R: RngCore> {
        inner: R,
        buf: Vec<u64>,
        pos: usize,
    }

    impl<R: RngCore> BufferedRng<R> {
        /// Wraps `inner`. No words are drawn until first use.
        pub fn new(inner: R) -> Self {
            BufferedRng {
                inner,
                buf: Vec::with_capacity(BUFFER_WORDS),
                pos: 0,
            }
        }

        /// Ensures at least `min` unconsumed words are buffered
        /// (refilling from the inner generator as needed) and returns
        /// *all* unconsumed words in stream order. `advance(n)`
        /// consumes the first `n`; un-advanced words are re-served by
        /// the next draw, whichever API makes it.
        ///
        /// # Panics
        ///
        /// Panics if `min > BUFFER_WORDS`.
        pub fn buffered(&mut self, min: usize) -> &[u64] {
            assert!(min <= BUFFER_WORDS, "buffered({min}) exceeds capacity");
            if self.buf.len() - self.pos < min {
                // Compact the (at most min - 1) leftover words to the
                // front, then refill to capacity.
                self.buf.drain(..self.pos);
                self.pos = 0;
                let start = self.buf.len();
                self.buf.resize(BUFFER_WORDS, 0);
                for w in &mut self.buf[start..] {
                    *w = self.inner.next_u64();
                }
            }
            &self.buf[self.pos..]
        }

        /// Consumes `n` buffered words.
        ///
        /// # Panics
        ///
        /// Panics if fewer than `n` unconsumed words are buffered.
        pub fn advance(&mut self, n: usize) {
            assert!(self.buf.len() - self.pos >= n, "advance past buffer");
            self.pos += n;
        }
    }

    impl<R: RngCore> RngCore for BufferedRng<R> {
        fn next_u64(&mut self) -> u64 {
            if self.pos == self.buf.len() {
                self.buffered(1);
            }
            let w = self.buf[self.pos];
            self.pos += 1;
            w
        }
    }

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::{Rng, Standard};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Value types [`Uniform`] can draw (floats only — the workspace
    /// uses uniform intervals for value generation, not indices).
    pub trait SampleUniform: Copy + PartialOrd {
        /// Interpolates `lo + u * (hi - lo)` for uniform `u` in `[0, 1)`.
        fn lerp_unit<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    }

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn lerp_unit<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    lo + <$t as Standard>::sample_standard(rng) * (hi - lo)
                }
            }
        )*};
    }
    impl_sample_uniform_float!(f32, f64);

    /// Uniform distribution over an interval.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over the closed interval `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive: lo > hi");
            Uniform { lo, hi }
        }

        /// Uniform over the half-open interval `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new: empty range");
            Uniform { lo, hi }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::lerp_unit(self.lo, self.hi, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::{BufferedRng, StdRng, BUFFER_WORDS};
    use super::{f32_from_word, f64_from_word, Rng, RngCore, SeedableRng};

    /// The satellite pin: a block-buffered `StdRng` must replay the
    /// unbuffered stream byte-for-byte under an adversarial mix of
    /// draw widths, peeks, and partial consumption.
    #[test]
    fn buffered_stream_matches_unbuffered_oracle() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            let mut oracle = StdRng::seed_from_u64(seed);
            let mut buffered = BufferedRng::new(StdRng::seed_from_u64(seed));
            // Mixed-width draws through the RngCore / Rng fronts.
            for i in 0..4 * BUFFER_WORDS {
                match i % 5 {
                    0 => assert_eq!(buffered.next_u64(), oracle.next_u64()),
                    1 => assert_eq!(buffered.next_u32(), oracle.next_u32()),
                    2 => assert_eq!(buffered.gen::<f64>(), oracle.gen::<f64>()),
                    3 => assert_eq!(buffered.gen::<f32>(), oracle.gen::<f32>()),
                    _ => {
                        let d = Uniform::new_inclusive(-1.0f32, 1.0);
                        assert_eq!(d.sample(&mut buffered), d.sample(&mut oracle));
                    }
                }
            }
            // Peek-then-partially-consume across several refills: peeked
            // words must match the oracle stream, and un-advanced words
            // must be re-served in order.
            for take in [0usize, 1, 2, 63, BUFFER_WORDS] {
                let words: Vec<u64> = buffered.buffered(BUFFER_WORDS)[..take.max(2)].to_vec();
                buffered.advance(take);
                for (j, &w) in words.iter().take(take).enumerate() {
                    assert_eq!(w, oracle.next_u64(), "seed {seed} take {take} word {j}");
                }
            }
            // And the tail still agrees.
            for _ in 0..3 * BUFFER_WORDS {
                assert_eq!(buffered.next_u64(), oracle.next_u64());
            }
        }
    }

    /// `f64_from_word` / `f32_from_word` are the exact raw-word forms
    /// of the per-draw `Standard` mappings.
    #[test]
    fn word_mappings_match_standard_draws() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.gen::<f64>(), f64_from_word(b.next_u64()));
        }
        for _ in 0..256 {
            assert_eq!(a.gen::<f32>(), f32_from_word(b.next_u64()));
        }
    }

    /// A clone of a buffered generator replays the identical remaining
    /// stream, including words already sitting in the buffer.
    #[test]
    fn buffered_clone_replays_remaining_stream() {
        let mut rng = BufferedRng::new(StdRng::seed_from_u64(9));
        rng.buffered(BUFFER_WORDS);
        rng.advance(17);
        let mut clone = rng.clone();
        for _ in 0..2 * BUFFER_WORDS {
            assert_eq!(rng.next_u64(), clone.next_u64());
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn floats_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mean32: f32 = (0..n).map(|_| rng.gen::<f32>()).sum::<f32>() / n as f32;
        assert!(
            (0.0..1.0).contains(&mean32) && (mean32 - 0.5).abs() < 0.01,
            "mean32 {mean32}"
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        // Full-width inclusive range must not overflow.
        let _: u16 = rng.gen_range(0u16..=u16::MAX);
    }

    #[test]
    fn uniform_inclusive_covers_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Uniform::new_inclusive(-1.0f32, 1.0);
        let mut lo = f32::MAX;
        let mut hi = f32::MIN;
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((-1.0..=1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < -0.99 && hi > 0.99, "range [{lo}, {hi}]");
    }
}
