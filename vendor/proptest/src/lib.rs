//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the proptest 1.x surface the workspace's
//! property tests use: the `proptest!` macro (with
//! `#![proptest_config(..)]`, `name in strategy` and `name: Type`
//! parameters), range, tuple, `prop::sample::select`,
//! `prop::collection::vec` and `prop::option::of` strategies, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Unlike upstream proptest there is no shrinking and no persisted
//! failure corpus: each test runs `cases` deterministic random cases
//! seeded from the test's name, so failures reproduce exactly across
//! runs and hosts.

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name and case index so every case is
    /// reproducible and distinct.
    pub fn new(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name.
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
}

/// Types with a whole-domain default strategy (`name: Type` parameters).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Combinator namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for vectors whose elements come from `element` and
        /// whose length is drawn from `len`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// `Vec` of `len` elements drawn from `element`, mirroring
        /// `proptest::collection::vec`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy yielding `None` or `Some(inner)`, mirroring
        /// `proptest::option::of` (upstream's 3:1 Some bias).
        #[derive(Clone, Debug)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some` three times out of four, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Sampling combinators.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy drawing uniformly from a fixed set of options.
        #[derive(Clone, Debug)]
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        /// Uniform choice among `options`.
        ///
        /// # Panics
        ///
        /// Panics (at generation time) if `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                assert!(!self.options.is_empty(), "select over no options");
                self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};

    /// The default whole-domain strategy for `T` (rarely used directly;
    /// `name: Type` parameters route through [`Arbitrary`]).
    pub fn any<T: crate::Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Strategy form of [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: crate::Arbitrary> crate::Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut crate::TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Property assertion; behaves like `assert!` (no shrinking here, so a
/// failure panics with the generated inputs baked into the message by
/// the harness loop).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion; behaves like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion; behaves like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The `proptest!` test-block macro. Supports the two forms the
/// workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0usize..10, seed: u64) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each `fn` item inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($params:tt)* ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(stringify!($name), __case);
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Internal: expands `proptest!` parameters into `let` bindings.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Mixed strategy and typed parameters bind and stay in range.
        #[test]
        fn ranges_and_arbitrary(x in 3usize..9, f in -2.0f32..2.0, seed: u64, bits: u16) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            let _ = (seed, bits);
        }

        /// Inclusive full-width ranges do not overflow.
        #[test]
        fn full_width_inclusive(bits in 0u16..=u16::MAX) {
            prop_assert!(u32::from(bits) <= 0xFFFF);
        }

        /// `select` only yields listed options.
        #[test]
        fn select_yields_options(w in prop::sample::select(vec![2u32, 4, 8, 16])) {
            prop_assert!([2, 4, 8, 16].contains(&w));
        }

        /// `collection::vec` of tuples respects length and element ranges.
        #[test]
        fn vec_of_tuples_in_range(v in prop::collection::vec((0usize..7, 1u8..=9u8), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            for (a, b) in v {
                prop_assert!(a < 7);
                prop_assert!((1..=9).contains(&b));
            }
        }

        /// `option::of` yields both variants and in-range payloads.
        #[test]
        fn option_of_in_range(o in prop::option::of(10u32..20)) {
            if let Some(x) = o {
                prop_assert!((10..20).contains(&x));
            }
        }
    }

    proptest! {
        /// Default config applies when no attribute is given.
        #[test]
        fn default_config(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a = TestRng::new("t", 3).next_u64();
        let b = TestRng::new("t", 3).next_u64();
        let c = TestRng::new("t", 4).next_u64();
        let d = TestRng::new("u", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
