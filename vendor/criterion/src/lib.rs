//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's
//! benches use (`Criterion`, `benchmark_group`, `bench_function`,
//! `Bencher::iter` / `iter_batched`, the `criterion_group!` /
//! `criterion_main!` macros) with real wall-clock measurement: each
//! benchmark runs a warm-up pass, then `sample_size` timed samples, and
//! prints min / median / mean. There is no statistical analysis, HTML
//! report, or saved baseline — numbers go to stdout.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises its setup; accepted for API
/// compatibility (every variant measures one routine call per sample).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Measurement harness handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<44} time: [min {} | median {} | mean {}] ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(id, &mut b.samples);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group; benchmark ids are reported as `group/id`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.samples);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 5);
        let mut b = Bencher::new(3);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        c.sample_size(2).bench_function("unit", |b| b.iter(|| 0u8));
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| 0u8));
        g.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(12)).ends_with("s"));
    }
}
