//! Fleet resilience gates: chaos determinism, goodput under failure,
//! and the retry/backoff math.
//!
//! The headline acceptance criteria for the cluster layer:
//!
//! * **Chaos determinism** — with a nonzero [`ClusterFaultPlan`], the
//!   metrics snapshot and the Chrome-trace bytes are identical at host
//!   job counts 1, 2, and 8 (the fleet loop is serial and every random
//!   decision is a pure seed hash, so job count cannot leak in).
//! * **Resilience pays** — under injected replica crashes, the full
//!   ladder (retries + failover routing + degradation) keeps goodput
//!   above zero *and* above a no-resilience baseline on the same fault
//!   schedule.

use gpu_sim::exec;
use gpu_sim::trace::TraceSink;
use gpu_sim::GpuSpec;
use proptest::prelude::*;
use spinfer_llm::{
    simulate_cluster, simulate_cluster_instrumented, ClusterConfig, ClusterFaultPlan,
    DegradationPolicy, RetryPolicy, RouterPolicy,
};
use spinfer_obs::Registry;

fn chaos_cfg() -> ClusterConfig {
    ClusterConfig {
        replicas: 3,
        arrival_rps: 3.0,
        duration_sec: 20.0,
        max_batch: 8,
        input_len: 128,
        output_len: 16,
        seed: 9,
        ..ClusterConfig::default()
    }
}

fn chaos_plan() -> ClusterFaultPlan {
    ClusterFaultPlan {
        seed: 42,
        crash_rate: 0.02,
        recovery_sec: 1.0,
        slow_rate: 0.05,
        slow_factor: 3.0,
        launch_fail_rate: 0.02,
    }
}

/// One instrumented chaos run → (metrics snapshot JSON, trace JSON).
fn chaos_artifacts() -> (String, String) {
    let spec = GpuSpec::rtx4090();
    let mut reg = Registry::new();
    let sink = TraceSink::new();
    let report = simulate_cluster_instrumented(
        &spec,
        &chaos_cfg(),
        Some(&chaos_plan()),
        Some(&mut reg),
        Some(&sink),
    )
    .expect("chaos config is valid");
    assert!(report.crashes > 0, "chaos plan must actually fire");
    (reg.snapshot_json(), spinfer_obs::export(&sink.finish()))
}

#[test]
fn chaos_metrics_and_trace_are_byte_identical_across_job_counts() {
    let mut artifacts = Vec::new();
    for jobs in [1usize, 2, 8] {
        exec::set_jobs(jobs);
        artifacts.push(chaos_artifacts());
    }
    exec::set_jobs(0);
    let (m1, t1) = &artifacts[0];
    for (jobs, (m, t)) in [2usize, 8].iter().zip(&artifacts[1..]) {
        assert_eq!(m1, m, "metrics snapshot diverged at --jobs {jobs}");
        assert_eq!(t1, t, "trace bytes diverged at --jobs {jobs}");
    }
    // The artifacts carry the headline observability surface.
    assert!(m1.contains("cluster.goodput_rps"));
    assert!(m1.contains("cluster.retries"));
    assert!(m1.contains("cluster.shed"));
    assert!(m1.contains("cluster.crashes"));
    assert!(m1.contains("cluster.replica0.latency_s"));
    assert!(m1.contains("\"p99\""));
    assert!(t1.contains("\"crash\""));
    spinfer_obs::validate(t1).expect("cluster trace must be structurally valid");
}

#[test]
fn resilience_keeps_goodput_above_the_naive_baseline_under_crashes() {
    let spec = GpuSpec::rtx4090();
    let plan = ClusterFaultPlan {
        seed: 7,
        crash_rate: 0.03,
        recovery_sec: 2.0,
        ..ClusterFaultPlan::default()
    };
    let resilient_cfg = chaos_cfg();
    let naive_cfg = ClusterConfig {
        retry: RetryPolicy::disabled(),
        degradation: DegradationPolicy::disabled(),
        router: RouterPolicy::RoundRobin,
        ..chaos_cfg()
    };
    let resilient = simulate_cluster(&spec, &resilient_cfg, Some(&plan)).unwrap();
    let naive = simulate_cluster(&spec, &naive_cfg, Some(&plan)).unwrap();
    assert!(
        resilient.crashes > 0 && naive.crashes > 0,
        "plan must fire in both runs"
    );
    assert!(
        resilient.goodput_rps > 0.0,
        "the ladder must keep the fleet serving: {resilient:?}"
    );
    assert!(
        resilient.goodput_rps > naive.goodput_rps,
        "resilience must beat the no-retry round-robin baseline: \
         resilient {} vs naive {} (naive failed {}, routed-to-down {})",
        resilient.goodput_rps,
        naive.goodput_rps,
        naive.failed,
        naive.routed_to_down
    );
    // The naive fleet leaks requests permanently; the resilient one
    // recovers them through the retry path.
    assert!(naive.failed > resilient.failed);
    assert!(resilient.retries > 0);
    assert_eq!(naive.retries, 0);
}

#[test]
fn faultless_report_is_identical_with_and_without_instrumentation() {
    // Attaching metrics + trace must not perturb the simulation.
    let spec = GpuSpec::rtx4090();
    let cfg = chaos_cfg();
    let bare = simulate_cluster(&spec, &cfg, Some(&chaos_plan())).unwrap();
    let mut reg = Registry::new();
    let sink = TraceSink::new();
    let instrumented = simulate_cluster_instrumented(
        &spec,
        &cfg,
        Some(&chaos_plan()),
        Some(&mut reg),
        Some(&sink),
    )
    .unwrap();
    assert_eq!(format!("{bare:?}"), format!("{instrumented:?}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The nominal backoff schedule is monotone non-decreasing in the
    /// attempt index and never exceeds the cap.
    #[test]
    fn backoff_is_monotone_and_capped(
        base in 1e-3f64..1.0,
        cap_mult in 1.0f64..64.0,
        attempts in 2u32..40,
    ) {
        let p = RetryPolicy {
            base_backoff_sec: base,
            backoff_cap_sec: base * cap_mult,
            ..RetryPolicy::default()
        };
        let mut prev = 0.0;
        for attempt in 1..=attempts {
            let b = p.nominal_backoff_sec(attempt);
            prop_assert!(b >= prev, "backoff shrank at attempt {attempt}");
            prop_assert!(b <= p.backoff_cap_sec + 1e-12);
            prev = b;
        }
        prop_assert_eq!(p.nominal_backoff_sec(attempts), p.backoff_cap_sec.min(
            base * (1u64 << (attempts - 1).min(62)) as f64));
    }

    /// The jittered backoff is a pure function of (seed, request,
    /// attempt): stable across calls and across host job counts, and
    /// bounded by the jitter envelope.
    #[test]
    fn jittered_backoff_is_seed_stable_and_job_count_invariant(
        seed in any::<u64>(),
        req in any::<u64>(),
        attempt in 1u32..16,
        jitter in 0.0f64..1.0,
    ) {
        let p = RetryPolicy { jitter_frac: jitter, ..RetryPolicy::default() };
        let reference = p.backoff_sec(seed, req, attempt);
        for jobs in [1usize, 2, 8] {
            exec::set_jobs(jobs);
            prop_assert_eq!(p.backoff_sec(seed, req, attempt), reference);
        }
        exec::set_jobs(0);
        let nominal = p.nominal_backoff_sec(attempt);
        prop_assert!(reference >= nominal);
        prop_assert!(reference <= nominal * (1.0 + jitter));
        // A different seed reshuffles the jitter (almost surely) but
        // stays inside the same envelope.
        let other = p.backoff_sec(seed ^ 0xdead_beef, req, attempt);
        prop_assert!(other >= nominal && other <= nominal * (1.0 + jitter));
    }
}
