//! Speculative-decoding gates: sampler determinism, degenerate
//! collapse, the high-acceptance speedup, and fleet integration.
//!
//! The headline acceptance criteria for the spec subsystem:
//!
//! * **Sampler determinism** — the accepted-prefix length is a pure
//!   function of `(seed, request, step)`: stable across calls, across
//!   host job counts 1/2/8, and monotone non-decreasing in the
//!   acceptance rate (same uniform draw, growing threshold).
//! * **Degenerate collapse** — under [`SpecConfig::degenerate`] the
//!   speculative serving loop reproduces the incremental path's report
//!   *and* trace bytes exactly.
//! * **Speculation pays where it should** — at acceptance 0.8 the
//!   tree-verify loop beats incremental tokens/s on a saturated
//!   workload; at acceptance 0.0 the same tree only burns draft and
//!   rollback work and loses.
//! * **Byte-identity** — spec metrics snapshots and Chrome traces are
//!   identical at host job counts 1, 2, and 8.

use gpu_sim::exec;
use gpu_sim::trace::TraceSink;
use gpu_sim::GpuSpec;
use proptest::prelude::*;
use spinfer_core::spmm::LaunchCtx;
use spinfer_llm::spec::AcceptanceModel;
use spinfer_llm::{
    serve_spec_ctx, serve_with, simulate_cluster, ClusterConfig, LengthMix, ModelConfig,
    ServingConfig, SpecConfig, TreeShape,
};
use spinfer_obs::Registry;

fn serving_cfg(arrival_rps: f64) -> ServingConfig {
    ServingConfig {
        model: ModelConfig::opt_13b(),
        framework: spinfer_llm::Framework::SpInfer,
        sparsity: 0.6,
        tp: 1,
        max_batch: 16,
        arrival_rps,
        input_len: 64,
        output_len: 64,
        duration_sec: 20.0,
        mix: LengthMix::Uniform,
    }
}

/// One instrumented speculative run → (report debug, metrics snapshot
/// JSON, trace JSON).
fn spec_artifacts(cfg: &ServingConfig, spec_cfg: &SpecConfig) -> (String, String, String) {
    let spec = GpuSpec::rtx4090();
    let sink = TraceSink::new();
    let report = serve_spec_ctx(&LaunchCtx::new(&spec).with_sink(&sink), cfg, spec_cfg);
    let mut reg = Registry::new();
    report.write_metrics(&mut reg, "spec.run");
    (
        format!("{report:?}"),
        reg.snapshot_json(),
        spinfer_obs::export(&sink.finish()),
    )
}

#[test]
fn degenerate_spec_reproduces_incremental_report_and_trace_bytes() {
    let spec = GpuSpec::rtx4090();
    let cfg = serving_cfg(4.0);

    let sink = TraceSink::new();
    let incremental = serve_with(&spec, &cfg, Some(&sink));
    let incremental_trace = spinfer_obs::export(&sink.finish());

    let sink = TraceSink::new();
    let collapsed = serve_spec_ctx(
        &LaunchCtx::new(&spec).with_sink(&sink),
        &cfg,
        &SpecConfig::degenerate(),
    );
    let collapsed_trace = spinfer_obs::export(&sink.finish());

    assert_eq!(
        format!("{incremental:?}"),
        format!("{:?}", collapsed.serving),
        "degenerate spec must collapse onto the incremental report"
    );
    assert_eq!(
        incremental_trace, collapsed_trace,
        "degenerate spec must emit the incremental trace byte-for-byte"
    );
    spinfer_obs::validate(&collapsed_trace).expect("spec trace must be structurally valid");
    // Nothing speculative happened: the ledger stays empty.
    let t = collapsed.stats;
    assert_eq!(
        (t.spec_iterations, t.proposed, t.accepted, t.bonus),
        (0, 0, 0, 0)
    );
}

#[test]
fn high_acceptance_beats_incremental_and_zero_acceptance_loses() {
    let spec = GpuSpec::rtx4090();
    // Saturated arrivals: the decode loop is launch-bound, which is the
    // regime where folding candidates into one wide-N pass pays.
    let cfg = serving_cfg(50.0);
    let baseline = spinfer_llm::serve(&spec, &cfg);

    let fast = spinfer_llm::serve_spec(
        &spec,
        &cfg,
        &SpecConfig {
            acceptance_rate: 0.8,
            ..SpecConfig::default()
        },
    );
    assert!(
        fast.serving.tokens_per_sec > baseline.tokens_per_sec * 1.2,
        "acceptance 0.8 must beat incremental: {} vs {}",
        fast.serving.tokens_per_sec,
        baseline.tokens_per_sec
    );
    assert!(fast.stats.accepted > 0 && fast.stats.bonus > 0);

    let slow = spinfer_llm::serve_spec(
        &spec,
        &cfg,
        &SpecConfig {
            acceptance_rate: 0.0,
            ..SpecConfig::default()
        },
    );
    assert!(
        slow.serving.tokens_per_sec < baseline.tokens_per_sec,
        "acceptance 0.0 with a real tree must lose: {} vs {}",
        slow.serving.tokens_per_sec,
        baseline.tokens_per_sec
    );
    assert_eq!(slow.stats.accepted, 0);
    assert!(slow.stats.rolled_back > 0, "rejects must roll back");
}

#[test]
fn spec_metrics_and_trace_are_byte_identical_across_job_counts() {
    let cfg = serving_cfg(8.0);
    let spec_cfg = SpecConfig {
        acceptance_rate: 0.8,
        seed: 42,
        ..SpecConfig::default()
    };
    let mut artifacts = Vec::new();
    for jobs in [1usize, 2, 8] {
        exec::set_jobs(jobs);
        artifacts.push(spec_artifacts(&cfg, &spec_cfg));
    }
    exec::set_jobs(0);
    let (r1, m1, t1) = &artifacts[0];
    for (jobs, (r, m, t)) in [2usize, 8].iter().zip(&artifacts[1..]) {
        assert_eq!(r1, r, "report diverged at --jobs {jobs}");
        assert_eq!(m1, m, "metrics snapshot diverged at --jobs {jobs}");
        assert_eq!(t1, t, "trace bytes diverged at --jobs {jobs}");
    }
    // The artifacts carry the headline speculation surface.
    assert!(m1.contains("spec.run.tokens_per_sec"));
    assert!(m1.contains("spec.run.acceptance_observed"));
    assert!(m1.contains("spec.run.rolled_back"));
    assert!(t1.contains("\"draft\""));
    assert!(t1.contains("\"verify\""));
    assert!(t1.contains("\"accept\""));
    spinfer_obs::validate(t1).expect("spec trace must be structurally valid");
}

#[test]
fn speculative_fleet_serves_and_degenerate_fleet_is_invisible() {
    let spec = GpuSpec::rtx4090();
    let cfg = ClusterConfig {
        replicas: 2,
        arrival_rps: 4.0,
        duration_sec: 10.0,
        max_batch: 8,
        input_len: 64,
        output_len: 16,
        seed: 9,
        ..ClusterConfig::default()
    };

    let speculative = simulate_cluster(
        &spec,
        &ClusterConfig {
            spec: Some(SpecConfig {
                acceptance_rate: 0.8,
                ..SpecConfig::default()
            }),
            ..cfg.clone()
        },
        None,
    )
    .expect("speculative fleet config is valid");
    assert!(speculative.spec_requests > 0, "{speculative:?}");
    assert!(speculative.spec_accepted > 0, "{speculative:?}");
    assert!(speculative.completed > 0, "{speculative:?}");

    // A degenerate spec config must be indistinguishable from no spec
    // config at all — same report, field for field.
    let without = simulate_cluster(&spec, &cfg, None).unwrap();
    let degenerate = simulate_cluster(
        &spec,
        &ClusterConfig {
            spec: Some(SpecConfig::degenerate()),
            ..cfg.clone()
        },
        None,
    )
    .unwrap();
    assert_eq!(format!("{without:?}"), format!("{degenerate:?}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The accepted-prefix length is a pure function of
    /// `(seed, request, step)`: stable across calls and across host job
    /// counts, and bounded by the tree's path depth.
    #[test]
    fn accepted_len_is_seed_stable_and_job_count_invariant(
        seed in any::<u64>(),
        req in any::<u64>(),
        step in any::<u64>(),
        rate in 0.0f64..1.0,
    ) {
        let tree = TreeShape::new(2, 3, 8).build();
        let m = AcceptanceModel::new(rate);
        let reference = m.accepted_len(seed, req, step, &tree);
        prop_assert!(reference <= tree.path_depth());
        for jobs in [1usize, 2, 8] {
            exec::set_jobs(jobs);
            prop_assert_eq!(m.accepted_len(seed, req, step, &tree), reference);
        }
        exec::set_jobs(0);
        prop_assert_eq!(m.accepted_len(seed, req, step, &tree), reference);
    }

    /// For a fixed site, raising the acceptance rate can only extend the
    /// accepted prefix: each level's uniform draw is pinned by the site
    /// hash while its accept threshold grows with the rate.
    #[test]
    fn accepted_len_is_monotone_in_rate(
        seed in any::<u64>(),
        req in any::<u64>(),
        step in any::<u64>(),
        lo in 0.0f64..1.0,
        hi in 0.0f64..1.0,
    ) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let tree = TreeShape::new(2, 3, 8).build();
        let at_lo = AcceptanceModel::new(lo).accepted_len(seed, req, step, &tree);
        let at_hi = AcceptanceModel::new(hi).accepted_len(seed, req, step, &tree);
        prop_assert!(at_lo <= at_hi, "rate {lo} accepted {at_lo} > rate {hi} accepted {at_hi}");
    }
}
