//! Fault-injection integration gates.
//!
//! Three promises of the robustness subsystem, checked end to end:
//! seeded fault schedules are *bit-identical at any host job count*
//! (injection decisions are pure hashes of `(seed, site)`, never of
//! thread schedule), detected corruption *never escapes* into the
//! product, and a serialized container carries enough integrity
//! metadata to catch storage-level bit damage on load.

use gpu_sim::exec;
use gpu_sim::fault::{FaultInjector, FaultPlan};
use gpu_sim::matrix::{max_abs_diff, random_dense, random_sparse, ValueDist};
use gpu_sim::GpuSpec;
use spinfer_core::{serialize, SpinferSpmm, TcaBme};

/// One test owns the process-global job count (same pattern as
/// `determinism.rs`): serial and parallel checked runs under the same
/// seeded plan must agree bit-for-bit, faults included.
#[test]
fn seeded_fault_run_is_bit_identical_at_any_job_count() {
    let spec = GpuSpec::rtx4090();
    let w = random_sparse(256, 192, 0.55, ValueDist::Uniform, 42);
    let x = random_dense(192, 16, ValueDist::Uniform, 43);
    let enc = TcaBme::encode(&w);
    let kernel = SpinferSpmm::new();
    let inj = FaultInjector::new(FaultPlan::uniform(2024, 0.02));

    exec::set_jobs(1);
    let serial = kernel
        .run_checked(&spec, &enc, &x, Some(&inj))
        .expect("recovers under 2% injection");
    exec::set_jobs(8);
    let parallel = kernel
        .run_checked(&spec, &enc, &x, Some(&inj))
        .expect("recovers under 2% injection");
    exec::set_jobs(0);

    assert_eq!(
        serial.output, parallel.output,
        "fault sites must not depend on host schedule"
    );
    assert_eq!(
        serial.chain.launches[0].counters, parallel.chain.launches[0].counters,
        "injection/detection/recovery tallies must match bit-for-bit"
    );
    assert!(
        serial.chain.launches[0].counters.faults_injected > 0,
        "the plan must actually strike for this gate to mean anything"
    );
}

#[test]
fn corruption_never_escapes_into_output() {
    let spec = GpuSpec::rtx4090();
    let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 7);
    let x = random_dense(128, 8, ValueDist::Uniform, 8);
    let enc = TcaBme::encode(&w);
    let reference = w.matmul_ref(&x);
    let kernel = SpinferSpmm::new();
    for seed in 0..5u64 {
        let inj = FaultInjector::new(FaultPlan::uniform(seed, 0.05));
        let run = kernel
            .run_checked(&spec, &enc, &x, Some(&inj))
            .expect("default policy always recovers or falls back");
        let c = &run.chain.launches[0].counters;
        assert!(c.faults_detected > 0, "5% must strike (seed {seed})");
        let out = run.output.as_ref().expect("functional output");
        assert!(
            out.iter().all(|v| v.is_finite()),
            "non-finite value escaped (seed {seed})"
        );
        let err = max_abs_diff(out, &reference);
        assert!(err < 0.5, "recovered product wrong: {err} (seed {seed})");
    }
}

/// Storage-level damage: flipping bits across a serialized container
/// never panics the loader and is overwhelmingly caught by the v2
/// checksum/validation layers. (Bytes of the *logical-shape header*
/// have no redundancy, so a handful of flips can still load — the
/// assertion is typed-error-or-consistent, never a crash.)
#[test]
fn serialized_container_catches_bit_damage_on_load() {
    let w = random_sparse(96, 96, 0.6, ValueDist::Uniform, 99);
    let enc = TcaBme::encode(&w);
    let bytes = serialize::to_bytes(&enc);
    assert!(serialize::from_bytes(&bytes).is_ok(), "pristine loads");
    let mut rejected = 0usize;
    let mut total = 0usize;
    for pos in (8..bytes.len()).step_by(13) {
        let mut dmg = bytes.clone();
        dmg[pos] ^= 0x10;
        total += 1;
        if serialize::from_bytes(&dmg).is_err() {
            rejected += 1;
        }
    }
    assert!(
        rejected * 10 >= total * 9,
        "expected >=90% of single-bit flips rejected, got {rejected}/{total}"
    );
}
