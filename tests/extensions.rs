//! Integration tests over the beyond-paper extensions: adaptive format
//! selection, INT8×TCA-BME quantisation, autotuning, serving, and the
//! storage-formula / real-encoder cross-checks the memory model relies on.

use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};
use gpu_sim::GpuSpec;
use spinfer_suite::baselines::{select, Route, TiledCsl};
use spinfer_suite::core::{tune, FormatStats, SpMMHandle, TcaBme};
use spinfer_suite::llm::serving::{serve, LengthMix, ServingConfig};
use spinfer_suite::llm::{Framework, ModelConfig};
use spinfer_suite::pruning::QuantizedTcaBme;

/// The memory model uses closed-form storage formulas; they must track
/// real encoders across the sparsity range the paper evaluates.
#[test]
fn framework_storage_formulas_track_real_encoders() {
    for &s in &[0.4f64, 0.5, 0.6, 0.7] {
        let w = random_sparse(768, 768, s, ValueDist::Uniform, 401);
        // TCA-BME: synthetic stats vs real encoding.
        let enc = TcaBme::encode(&w);
        let formula = FormatStats::synthetic(768, 768, s).storage_bytes();
        let actual = enc.storage_bytes();
        let rel = (formula as f64 - actual as f64).abs() / actual as f64;
        assert!(rel < 0.02, "TCA-BME s={s}: formula {formula} vs {actual}");
        // Tiled-CSL: framework formula vs real encoding.
        let fw = Framework::FlashLlm.weight_bytes(768, 768, s);
        let real = TiledCsl::encode(&w).storage_bytes();
        let rel = (fw as f64 - real as f64).abs() / real as f64;
        assert!(rel < 0.02, "Tiled-CSL s={s}: formula {fw} vs {real}");
    }
}

/// Quantisation composes with the full stack: prune → encode → quantise
/// → dequantise → SpMM stays accurate, 4x smaller than dense.
#[test]
fn quantised_sparse_weights_through_the_kernel() {
    let spec = GpuSpec::rtx4090();
    let w = random_sparse(512, 256, 0.6, ValueDist::Normal { std: 0.05 }, 402);
    let x = random_dense(256, 16, ValueDist::Normal { std: 0.5 }, 403);
    let enc = TcaBme::encode(&w);
    let q = QuantizedTcaBme::quantize(&enc);
    assert!(q.storage_bytes() * 4 < w.dense_bytes() * 3 / 2);

    let handle = SpMMHandle {
        weights: q.dequantize(),
        kernel: Default::default(),
    };
    let out = handle.matmul(&spec, &x);
    let reference = w.matmul_ref(&x);
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (a, b) in out.output.as_ref().unwrap().iter().zip(&reference) {
        num += f64::from(a - b) * f64::from(a - b);
        den += f64::from(*b) * f64::from(*b);
    }
    let rel = (num / den.max(1e-12)).sqrt();
    assert!(rel < 0.02, "relative output error {rel}");
}

/// The adaptive selector reproduces the paper's regime boundaries
/// end-to-end: TCA-BME in the LLM band, block formats on clustered
/// scientific patterns.
#[test]
fn selector_matches_paper_regimes() {
    let spec = GpuSpec::rtx4090();
    let llm = random_sparse(768, 768, 0.55, ValueDist::Uniform, 404);
    assert_eq!(select(&spec, &llm, 16).route, Route::TcaBmeSpInfer);
    let sci = gpu_sim::matrix::random_sparse_clustered(
        1024,
        1024,
        16,
        0.02,
        0.7,
        ValueDist::Uniform,
        405,
    );
    assert_eq!(select(&spec, &sci, 16).route, Route::BcsrSmat);
}

/// Autotuned configurations must never lose to the shipped default, and
/// the tuner must respond to shape (short-wide layers pick split-K).
#[test]
fn autotuner_dominates_defaults_across_shapes() {
    let spec = GpuSpec::rtx4090();
    for &(m, k) in &[(28672usize, 8192usize), (5120, 5120), (1024, 16384)] {
        let best = tune(&spec, m, k, 16, 0.6).best.time_us;
        let default = spinfer_suite::core::SpinferSpmm::new()
            .estimate(&spec, &FormatStats::synthetic(m, k, 0.6), 16)
            .time_us();
        assert!(best <= default * 1.001, "{m}x{k}: {best} vs {default}");
    }
}

/// The serving simulator and the static engine agree where they overlap:
/// a saturated server's token rate approaches the static batch=cap rate.
#[test]
fn serving_saturation_matches_static_engine() {
    let spec = GpuSpec::rtx4090();
    let cfg = ServingConfig {
        model: ModelConfig::opt_13b(),
        framework: Framework::SpInfer,
        sparsity: 0.6,
        tp: 2,
        max_batch: 16,
        arrival_rps: 100.0, // Overload: always a full batch.
        input_len: 64,
        output_len: 128,
        duration_sec: 60.0,
        mix: LengthMix::Uniform,
    };
    let served = serve(&spec, &cfg);
    let static_run = spinfer_suite::llm::simulate(
        &spec,
        &spinfer_suite::llm::InferenceConfig {
            model: ModelConfig::opt_13b(),
            framework: Framework::SpInfer,
            sparsity: 0.6,
            batch: 16,
            input_len: 64,
            output_len: 128,
            tp: 2,
        },
    );
    let ratio = served.tokens_per_sec / static_run.tokens_per_sec;
    assert!(
        (0.7..=1.3).contains(&ratio),
        "serving {} vs static {} (ratio {ratio})",
        served.tokens_per_sec,
        static_run.tokens_per_sec
    );
}
