//! Parallel execution engine determinism (see `gpu_sim::exec`).
//!
//! Host parallelism must be invisible in every simulated result: the
//! worker-pool fan-out has to produce the same bits as forced
//! single-thread execution — full [`gpu_sim::Counters`] equality on
//! every launch and identical FP32 output — for SpInfer and the
//! baseline kernels.

use gpu_sim::exec;
use gpu_sim::matrix::{checksum_f32, random_dense, random_sparse, ValueDist};
use gpu_sim::trace::TraceSink;
use gpu_sim::GpuSpec;
use spinfer_baselines::kernels::{CublasGemm, CusparseSpmm, FlashLlmSpmm, SputnikSpmm};
use spinfer_bench::sweep::{run_functional, EncodeCache, SweepPoint};
use spinfer_bench::{KernelKind, HERO_K, HERO_M};
use spinfer_core::spmm::SpmmKernel;
use spinfer_core::{SpinferSpmm, TcaBme};

// Captured by `cargo run --release --bin golden`.
// Functional golden shape: 900x720x20 s=0.65 seed=1234 on RTX4090.
const GOLDEN_FUNCTIONAL: [(&str, u64, u64, u64); 7] = [
    (
        "cuBLAS_TC",
        0x6c43e71288bfb56c,
        0x401d95bc36eb4cb5,
        0x8115af377686b55e,
    ),
    (
        "SpInfer",
        0x7f02b711256e7bec,
        0x4010fe5ce279a901,
        0xbec8add38b5809ac,
    ),
    (
        "Flash-LLM",
        0x1f6db66aee63ca5f,
        0x40126532e5089162,
        0x8115af377686b55e,
    ),
    (
        "SparTA",
        0xe5cdcfc1605bcb2d,
        0x4020692093478b54,
        0x8115af377686b55e,
    ),
    (
        "Sputnik",
        0x6884a7c24b335f49,
        0x402313a9ab12274b,
        0x8115af377686b55e,
    ),
    (
        "cuSPARSE",
        0x8cf6fff4051068b5,
        0x4081a748d296d866,
        0x8115af377686b55e,
    ),
    (
        "SMaT",
        0x3d9cf9f386209224,
        0x4013c687b0524209,
        0x8115af377686b55e,
    ),
];
// Analytic simulated time (µs, f64 bits) at the hero shape 28672x8192x16 s=0.6.
const GOLDEN_HERO_ANALYTIC: [(&str, u64); 7] = [
    ("cuBLAS_TC", 0x408060673be0d215),
    ("SpInfer", 0x406f949d0661a6aa),
    ("Flash-LLM", 0x407a17e77fed010b),
    ("SparTA", 0x40789a56e8b3885c),
    ("Sputnik", 0x4089b73e495a85c2),
    ("cuSPARSE", 0x40b5fcc3a7ee98ff),
    ("SMaT", 0x4080675514e03113),
];

const ROSTER: [KernelKind; 7] = [
    KernelKind::CublasTc,
    KernelKind::SpInfer,
    KernelKind::FlashLlm,
    KernelKind::SparTa,
    KernelKind::Sputnik,
    KernelKind::CuSparse,
    KernelKind::Smat,
];

/// Golden-counter regression gate: a fixed-seed run of every kernel must
/// reproduce the pinned counter digests, simulated-time bit patterns, and
/// FP32 output checksums exactly. Host-side optimisations (LUT decode,
/// decode-once fragments, allocation-free analyzers) are only admissible
/// when this stays green — they may change wall-clock, never results.
/// Re-capture with `cargo run --release --bin golden` when a *modelling*
/// change legitimately moves the constants.
fn assert_golden_constants(spec: &GpuSpec) {
    let (m, k, n, sparsity, seed) = (900, 720, 20, 0.65, 1234);
    let cache = EncodeCache::new();
    for (kernel, &(label, digest, time_bits, checksum)) in ROSTER.iter().zip(&GOLDEN_FUNCTIONAL) {
        assert_eq!(kernel.label(), label, "roster order");
        let p = SweepPoint {
            m,
            k,
            n,
            sparsity,
            kernel: *kernel,
        };
        let run = run_functional(&cache, spec, &p, seed);
        assert_eq!(
            run.chain.merged_counters().digest(),
            digest,
            "{label}: counter digest drifted"
        );
        assert_eq!(
            run.time_us().to_bits(),
            time_bits,
            "{label}: simulated time drifted"
        );
        assert_eq!(
            checksum_f32(run.output.as_ref().expect("functional output")),
            checksum,
            "{label}: output checksum drifted"
        );
    }
    for (kernel, &(label, time_bits)) in ROSTER.iter().zip(&GOLDEN_HERO_ANALYTIC) {
        let us = kernel.time_us(spec, HERO_M, HERO_K, 16, 0.6);
        assert_eq!(
            us.to_bits(),
            time_bits,
            "{label}: hero analytic time drifted"
        );
    }
}

/// One `#[test]` on purpose: `exec::set_jobs` is process-global and the
/// default harness runs `#[test]` fns on concurrent threads, so the
/// flip-and-restore must not interleave with other tests.
#[test]
fn parallel_run_is_bit_identical_to_serial() {
    let spec = GpuSpec::rtx4090();
    // Several block rows (gtiles_y > 1) and a non-trivial batch, so the
    // parallel path genuinely fans out.
    let w = random_sparse(256, 512, 0.6, ValueDist::Uniform, 41);
    let x = random_dense(512, 16, ValueDist::Uniform, 42);
    let enc = TcaBme::encode(&w);

    let run_all = || {
        vec![
            ("spinfer", SpinferSpmm::new().run(&spec, &enc, &x)),
            ("flash_llm", FlashLlmSpmm::new().run(&spec, &w, &x)),
            ("sputnik", SputnikSpmm::new().run(&spec, &w, &x)),
            ("cusparse", CusparseSpmm::new().run(&spec, &w, &x)),
            ("cublas", CublasGemm::new().run(&spec, &w, &x)),
        ]
    };

    // Tracing must be invisible in the golden results: same output bits,
    // same counters, same simulated time, at any job count.
    let run_traced = || {
        let sink = TraceSink::new();
        let run = SpinferSpmm::new().run_traced(&spec, &enc, &x, &sink);
        (run, sink.finish())
    };

    exec::set_jobs(1);
    let serial = run_all();
    let (traced_serial, trace_serial) = run_traced();
    // Golden-counter gate rides the serial phase: the pinned constants
    // were captured at --jobs 1 (any job count must match them, but one
    // deterministic setting keeps the failure report unambiguous).
    assert_golden_constants(&spec);
    exec::set_jobs(8);
    let parallel = run_all();
    let (traced_parallel, trace_parallel) = run_traced();
    exec::set_jobs(0);

    for (label, traced) in [("jobs 1", &traced_serial), ("jobs 8", &traced_parallel)] {
        assert_eq!(
            serial[0].1.output, traced.output,
            "traced run ({label}): output differs from untraced"
        );
        assert_eq!(
            serial[0].1.chain.merged_counters(),
            traced.chain.merged_counters(),
            "traced run ({label}): counters differ from untraced"
        );
        assert_eq!(
            serial[0].1.time_us().to_bits(),
            traced.time_us().to_bits(),
            "traced run ({label}): simulated time differs from untraced"
        );
    }
    // And the recorded span stream itself is a pure function of the
    // simulated work, not of host scheduling.
    assert_eq!(
        trace_serial, trace_parallel,
        "trace stream differs between jobs 1 and 8"
    );

    for ((name, s), (_, p)) in serial.iter().zip(&parallel) {
        // Bit-identical numerics: disjoint output bands mean no
        // cross-worker FP reduction exists.
        assert_eq!(s.output, p.output, "{name}: output differs");
        // Bit-identical instrumentation: full Counters equality on
        // every launch of the chain (u64 shard merges commute).
        assert_eq!(
            s.chain.launches.len(),
            p.chain.launches.len(),
            "{name}: launch count differs"
        );
        for (ls, lp) in s.chain.launches.iter().zip(&p.chain.launches) {
            assert_eq!(
                ls.counters, lp.counters,
                "{name}/{}: counters differ",
                ls.name
            );
        }
        assert_eq!(s.time_us(), p.time_us(), "{name}: simulated time differs");
    }
}
