//! Parallel execution engine determinism (see `gpu_sim::exec`).
//!
//! Host parallelism must be invisible in every simulated result: the
//! worker-pool fan-out has to produce the same bits as forced
//! single-thread execution — full [`gpu_sim::Counters`] equality on
//! every launch and identical FP32 output — for SpInfer and the
//! baseline kernels.

use gpu_sim::exec;
use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};
use gpu_sim::GpuSpec;
use spinfer_baselines::kernels::{CublasGemm, CusparseSpmm, FlashLlmSpmm, SputnikSpmm};
use spinfer_core::{SpinferSpmm, TcaBme};

/// One `#[test]` on purpose: `exec::set_jobs` is process-global and the
/// default harness runs `#[test]` fns on concurrent threads, so the
/// flip-and-restore must not interleave with other tests.
#[test]
fn parallel_run_is_bit_identical_to_serial() {
    let spec = GpuSpec::rtx4090();
    // Several block rows (gtiles_y > 1) and a non-trivial batch, so the
    // parallel path genuinely fans out.
    let w = random_sparse(256, 512, 0.6, ValueDist::Uniform, 41);
    let x = random_dense(512, 16, ValueDist::Uniform, 42);
    let enc = TcaBme::encode(&w);

    let run_all = || {
        vec![
            ("spinfer", SpinferSpmm::new().run(&spec, &enc, &x)),
            ("flash_llm", FlashLlmSpmm::new().run(&spec, &w, &x)),
            ("sputnik", SputnikSpmm::new().run(&spec, &w, &x)),
            ("cusparse", CusparseSpmm::new().run(&spec, &w, &x)),
            ("cublas", CublasGemm::new().run(&spec, &w, &x)),
        ]
    };

    exec::set_jobs(1);
    let serial = run_all();
    exec::set_jobs(8);
    let parallel = run_all();
    exec::set_jobs(0);

    for ((name, s), (_, p)) in serial.iter().zip(&parallel) {
        // Bit-identical numerics: disjoint output bands mean no
        // cross-worker FP reduction exists.
        assert_eq!(s.output, p.output, "{name}: output differs");
        // Bit-identical instrumentation: full Counters equality on
        // every launch of the chain (u64 shard merges commute).
        assert_eq!(
            s.chain.launches.len(),
            p.chain.launches.len(),
            "{name}: launch count differs"
        );
        for (ls, lp) in s.chain.launches.iter().zip(&p.chain.launches) {
            assert_eq!(
                ls.counters, lp.counters,
                "{name}/{}: counters differ",
                ls.name
            );
        }
        assert_eq!(s.time_us(), p.time_us(), "{name}: simulated time differs");
    }
}
