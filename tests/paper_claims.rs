//! The paper's headline claims, pinned as executable assertions.
//!
//! Each test corresponds to a sentence in the paper; tolerances reflect
//! that our substrate is a simulator, not the authors' testbed — the
//! *shape* (who wins, roughly by how much, where crossovers sit) is what
//! is asserted. `EXPERIMENTS.md` records the measured values.

use gpu_sim::GpuSpec;
use spinfer_baselines::kernels::{
    CublasGemm, FlashLlmSpmm, FlashLlmStats, SpartaSpmm, SpartaStats,
};
use spinfer_bench::{figure10_shapes, geomean, KernelKind, HERO_K, HERO_M};
use spinfer_core::{FormatStats, SpinferSpmm};
use spinfer_llm::{simulate, Framework, InferenceConfig, ModelConfig};
use spinfer_roofline::{compression_ratio, FormatKind};

/// §1: "SpInfer outperforms cuBLAS at sparsity levels as low as 30%".
#[test]
fn claim_wins_at_30_percent_sparsity() {
    let spec = GpuSpec::rtx4090();
    let cb = CublasGemm::new()
        .estimate(&spec, HERO_M, HERO_K, 16)
        .time_us();
    let sp = SpinferSpmm::new()
        .estimate(&spec, &FormatStats::synthetic(HERO_M, HERO_K, 0.3), 16)
        .time_us();
    assert!(cb / sp > 1.0, "speedup at 30%: {}", cb / sp);
}

/// §5.1: "up to 2.14x over Flash-LLM and 2.27x over SparTA".
#[test]
fn claim_beats_flash_llm_and_sparta_everywhere() {
    let spec = GpuSpec::rtx4090();
    let mut max_fl: f64 = 0.0;
    let mut max_st: f64 = 0.0;
    for &s in &[0.4, 0.5, 0.6, 0.7] {
        let sp = SpinferSpmm::new()
            .estimate(&spec, &FormatStats::synthetic(HERO_M, HERO_K, s), 16)
            .time_us();
        let fl = FlashLlmSpmm::new()
            .estimate(&spec, &FlashLlmStats::synthetic(HERO_M, HERO_K, s), 16)
            .time_us();
        let st = SpartaSpmm::new()
            .estimate(&spec, &SpartaStats::synthetic(HERO_M, HERO_K, s), 16)
            .time_us();
        assert!(sp < fl && sp < st, "sparsity {s}");
        max_fl = max_fl.max(fl / sp);
        max_st = max_st.max(st / sp);
    }
    // Paper peaks: 2.14x / 2.27x; allow the simulator a generous band.
    assert!(max_fl > 1.3 && max_fl < 3.0, "max vs Flash-LLM {max_fl}");
    assert!(max_st > 1.3 && max_st < 3.5, "max vs SparTA {max_st}");
}

/// §5.1: average speedups over cuBLAS by sparsity (1.46x @40%,
/// 1.66x @50%, 1.90x @70% in the paper).
#[test]
fn claim_average_speedup_grows_with_sparsity() {
    let spec = GpuSpec::rtx4090();
    let mut avg = Vec::new();
    for &s in &[0.4, 0.5, 0.7] {
        let mut v = Vec::new();
        for shape in figure10_shapes() {
            for &n in &[8usize, 16, 32] {
                let cb = KernelKind::CublasTc.time_us(&spec, shape.m, shape.k, n, s);
                let sp = KernelKind::SpInfer.time_us(&spec, shape.m, shape.k, n, s);
                v.push(cb / sp);
            }
        }
        avg.push(geomean(&v));
    }
    assert!(avg[0] > 1.2 && avg[0] < 1.9, "40%: {}", avg[0]);
    assert!(avg[1] > avg[0], "50% must beat 40%");
    assert!(avg[2] > avg[1], "70% must beat 50%");
    assert!(avg[2] < 3.2, "70%: {}", avg[2]);
}

/// §5.1: "at 50% ... outperforming all other kernels on 96.30% of test
/// cases"; we require a win rate above 90% across the zoo.
#[test]
fn claim_win_rate_at_50_percent() {
    let spec = GpuSpec::rtx4090();
    let mut wins = 0;
    let mut total = 0;
    for shape in figure10_shapes() {
        for &n in &[8usize, 16, 32] {
            let sp = KernelKind::SpInfer.time_us(&spec, shape.m, shape.k, n, 0.5);
            let all_better = KernelKind::figure10_roster()
                .iter()
                .filter(|k| **k != KernelKind::SpInfer)
                .all(|k| sp < k.time_us(&spec, shape.m, shape.k, n, 0.5));
            total += 1;
            if all_better {
                wins += 1;
            }
        }
    }
    let rate = f64::from(wins) / f64::from(total);
    assert!(rate > 0.9, "win rate {rate}");
}

/// §3.2.1 / Figure 3: TCA-BME keeps CR > 1 from 10% sparsity on, while
/// CSR needs ~67% and Tiled-CSL 50%.
#[test]
fn claim_compression_crossovers() {
    assert!(compression_ratio(FormatKind::TcaBme, 4096, 4096, 0.1) > 1.0);
    assert!(compression_ratio(FormatKind::Csr, 4096, 4096, 0.6) < 1.0);
    assert!(compression_ratio(FormatKind::Csr, 4096, 4096, 0.75) > 1.0);
    assert!(compression_ratio(FormatKind::TiledCsl, 4096, 4096, 0.45) < 1.0);
    assert!(compression_ratio(FormatKind::TiledCsl, 4096, 4096, 0.55) > 1.0);
}

/// §6 / Figure 16: in the compute-bound prefill regime SpInfer is at most
/// modestly slower than cuBLAS (paper: up to 11.8%; we allow 20%).
#[test]
fn claim_prefill_deficit_is_bounded() {
    let spec = GpuSpec::rtx4090();
    for &n in &[2048usize, 4096] {
        let cb = KernelKind::CublasTc.time_us(&spec, HERO_M, HERO_K, n, 0.6);
        let sp = KernelKind::SpInfer.time_us(&spec, HERO_M, HERO_K, n, 0.6);
        let deficit = sp / cb - 1.0;
        assert!(deficit < 0.20, "N={n}: {:.1}% slower", deficit * 100.0);
    }
}

/// §5.2: end-to-end speedups on RTX4090 — paper averages 1.35x / 1.42x /
/// 1.49x over Flash-LLM / FT / DS.
#[test]
fn claim_end_to_end_speedups() {
    let spec = GpuSpec::rtx4090();
    let run = |fw| {
        simulate(
            &spec,
            &InferenceConfig {
                model: ModelConfig::opt_13b(),
                framework: fw,
                sparsity: 0.6,
                batch: 16,
                input_len: 64,
                output_len: 256,
                tp: 2,
            },
        )
        .tokens_per_sec
    };
    let sp = run(Framework::SpInfer);
    let fl = sp / run(Framework::FlashLlm);
    let ft = sp / run(Framework::FasterTransformer);
    let ds = sp / run(Framework::DeepSpeed);
    assert!(fl > 1.1 && fl < 1.8, "vs Flash-LLM {fl}");
    assert!(ft > fl, "FT must trail Flash-LLM");
    assert!(ds > ft, "DS must trail FT");
    assert!(ds < 2.2, "vs DS {ds}");
}

/// §5.2: "SpInfer's 60%-sparsity OPT-13B consumes ~14.4 GB vs the dense
/// baseline's 27.4 GB (47.5% reduction)"; and the OOM asymmetry: SpInfer
/// reaches 1024 output tokens on one 4090 where Flash-LLM stops at 256.
#[test]
fn claim_memory_reduction_and_oom_asymmetry() {
    let spec = GpuSpec::rtx4090();
    let mk = |fw, out| {
        simulate(
            &spec,
            &InferenceConfig {
                model: ModelConfig::opt_13b(),
                framework: fw,
                sparsity: 0.6,
                batch: 8,
                input_len: 64,
                output_len: out,
                tp: 1,
            },
        )
    };
    let sp = mk(Framework::SpInfer, 1024);
    assert!(
        !sp.oom,
        "SpInfer @1024 must fit: {} GiB",
        sp.memory.total_gib()
    );
    let fl = mk(Framework::FlashLlm, 1024);
    assert!(
        fl.oom,
        "Flash-LLM @1024 must OOM: {} GiB",
        fl.memory.total_gib()
    );
    let fl_short = mk(Framework::FlashLlm, 128);
    assert!(!fl_short.oom, "Flash-LLM @128 should fit");

    // Memory reduction vs dense at the paper's BS=16/len-256 point.
    let dense = simulate(
        &spec,
        &InferenceConfig {
            model: ModelConfig::opt_13b(),
            framework: Framework::FasterTransformer,
            sparsity: 0.0,
            batch: 16,
            input_len: 64,
            output_len: 256,
            tp: 1,
        },
    );
    let spm = simulate(
        &spec,
        &InferenceConfig {
            model: ModelConfig::opt_13b(),
            framework: Framework::SpInfer,
            sparsity: 0.6,
            batch: 16,
            input_len: 64,
            output_len: 256,
            tp: 1,
        },
    );
    let reduction = 1.0 - spm.memory.total() as f64 / dense.memory.total() as f64;
    assert!((reduction - 0.475).abs() < 0.15, "reduction {reduction}");
}

/// Table 1: ablation ordering — full < w/o AsyncPipe < w/o SMBD in
/// duration, with SMBD the bigger contributor.
#[test]
fn claim_ablation_ordering() {
    use spinfer_core::Ablation;
    let spec = GpuSpec::rtx4090();
    let stats = FormatStats::synthetic(HERO_M, HERO_K, 0.6);
    let t = |smbd, async_pipe| {
        SpinferSpmm::with_ablation(Ablation { smbd, async_pipe })
            .estimate(&spec, &stats, 16)
            .time_us()
    };
    let full = t(true, true);
    let no_async = t(true, false);
    let no_smbd = t(false, true);
    assert!(full < no_async && no_async < no_smbd);
    // Paper: +2% and +10%; we accept anything within [+1%, +60%].
    assert!(no_async / full > 1.01 && no_async / full < 1.6);
    assert!(no_smbd / full > 1.05 && no_smbd / full < 1.6);
}
