//! Property-based tests over the core data structures and invariants.

use gpu_sim::bitops::{masked_popc64, popc64, test_bit};
use gpu_sim::fp16::Half;
use gpu_sim::matrix::{max_abs_diff, random_dense, random_sparse, DenseMatrix, ValueDist};
use gpu_sim::shared_memory::analyze_warp_access;
use gpu_sim::GpuSpec;
use proptest::prelude::*;
use spinfer_baselines::formats::{Bcsr, Csr, SpartaFormat, TiledCsl};
use spinfer_core::{serialize, SpMMHandle, TcaBme};
use spinfer_pruning::QuantizedTcaBme;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every finite f16 bit pattern survives f16 → f32 → f16.
    #[test]
    fn fp16_roundtrip(bits in 0u16..=u16::MAX) {
        let h = Half::from_bits(bits);
        if h.is_nan() {
            prop_assert!(Half::from_f32(h.to_f32()).is_nan());
        } else {
            prop_assert_eq!(Half::from_f32(h.to_f32()).to_bits(), bits);
        }
    }

    /// f32 → f16 conversion never increases magnitude past the next
    /// representable value and preserves sign.
    #[test]
    fn fp16_conversion_sign_and_monotonicity(a in -1.0e4f32..1.0e4, b in -1.0e4f32..1.0e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let hl = Half::from_f32(lo).to_f32();
        let hh = Half::from_f32(hi).to_f32();
        prop_assert!(hl <= hh, "monotone: {lo} -> {hl}, {hi} -> {hh}");
        if a != 0.0 {
            prop_assert_eq!(a.is_sign_negative(), Half::from_f32(a).to_f32().is_sign_negative() || Half::from_f32(a).is_zero());
        }
    }

    /// MaskedPopCount equals the naive bit scan for any bitmap/offset.
    #[test]
    fn masked_popcount_matches_scan(bitmap: u64, offset in 0u32..=64) {
        let manual = (0..offset).filter(|&i| test_bit(bitmap, i)).count() as u32;
        prop_assert_eq!(masked_popc64(bitmap, offset), manual);
    }

    /// The SMBD offset identity: lane offsets partition the bitmap, so
    /// summing per-lane contributions reconstructs popc64.
    #[test]
    fn smbd_offset_identity(bitmap: u64) {
        let mut total = 0u32;
        for lane in 0..32u32 {
            total += u32::from(test_bit(bitmap, 2 * lane));
            total += u32::from(test_bit(bitmap, 2 * lane + 1));
        }
        prop_assert_eq!(total, popc64(bitmap));
    }

    /// Bank-conflict analysis: transactions ≥ phases with activity, and
    /// conflicts = transactions − active phases.
    #[test]
    fn bank_model_invariants(seed: u64, width in prop::sample::select(vec![2u32, 4, 8, 16])) {
        let mut addrs = [None; 32];
        let mut s = seed;
        for a in addrs.iter_mut() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if !s.is_multiple_of(4) {
                *a = Some((s >> 16) % 4096);
            }
        }
        let r = analyze_warp_access(&addrs, width);
        let lanes_per_phase = match width { 2 | 4 => 32, 8 => 16, _ => 8 };
        let active_phases = addrs
            .chunks(lanes_per_phase)
            .filter(|c| c.iter().any(Option::is_some))
            .count() as u64;
        prop_assert!(r.transactions >= active_phases);
        prop_assert_eq!(r.conflicts, r.transactions - active_phases);
    }

    /// TCA-BME encode/decode is lossless for arbitrary shapes/sparsity.
    #[test]
    fn tca_bme_roundtrip(
        rows in 1usize..100,
        cols in 1usize..100,
        sparsity in 0.0f64..1.0,
        seed: u64,
    ) {
        let m = random_sparse(rows, cols, sparsity, ValueDist::Uniform, seed);
        let enc = TcaBme::encode(&m);
        prop_assert_eq!(enc.decode(), m);
    }

    /// TCA-BME storage never exceeds the Eq. 9 formula by more than the
    /// per-GroupTile alignment padding.
    #[test]
    fn tca_bme_storage_bound(rows in 8usize..128, cols in 8usize..128, sparsity in 0.0f64..1.0, seed: u64) {
        let m = random_sparse(rows, cols, sparsity, ValueDist::Uniform, seed);
        let enc = TcaBme::encode(&m);
        let formula = TcaBme::storage_bytes_formula(rows, cols, enc.nnz, enc.config);
        let pad = enc.num_gtiles() * 6; // ≤3 padded elements x 2 B.
        prop_assert!(enc.storage_bytes() >= formula);
        prop_assert!(enc.storage_bytes() <= formula + pad);
    }

    /// All baseline formats roundtrip losslessly.
    #[test]
    fn baseline_formats_roundtrip(rows in 1usize..80, cols in 1usize..80, sparsity in 0.0f64..1.0, seed: u64) {
        let m = random_sparse(rows, cols, sparsity, ValueDist::Uniform, seed);
        prop_assert_eq!(Csr::encode(&m).decode(), m.clone());
        prop_assert_eq!(TiledCsl::encode(&m).decode(), m.clone());
        prop_assert_eq!(SpartaFormat::encode(&m).decode(), m.clone());
        prop_assert_eq!(Bcsr::encode(&m).decode(), m);
    }

    /// Serialisation round-trips any encodable matrix bit-exactly, and
    /// any single-byte corruption of the payload is either detected or
    /// still decodes to a structurally valid matrix.
    #[test]
    fn serialize_roundtrip_any_matrix(rows in 1usize..96, cols in 1usize..96, sparsity in 0.0f64..1.0, seed: u64) {
        let m = random_sparse(rows, cols, sparsity, ValueDist::Uniform, seed);
        let enc = TcaBme::encode(&m);
        let bytes = serialize::to_bytes(&enc);
        let back = serialize::from_bytes(&bytes).expect("roundtrip");
        prop_assert_eq!(back.decode(), m);
    }

    /// Arbitrary byte mutations (and truncations) of a valid container
    /// never panic the loader: every outcome is `Ok` or a typed
    /// `DecodeError` whose `Display` also never panics. Length-field
    /// mutations in particular must be rejected *before* any
    /// allocation is sized from them.
    #[test]
    fn serialize_fuzzed_mutations_never_panic(
        seed: u64,
        mutations in prop::collection::vec((0usize..8192, 0u8..=255u8), 1..16),
        truncate in prop::option::of(0usize..8192),
    ) {
        let m = random_sparse(48, 80, 0.6, ValueDist::Uniform, seed);
        let mut bytes = serialize::to_bytes(&TcaBme::encode(&m));
        for (pos, val) in mutations {
            let idx = pos % bytes.len();
            bytes[idx] = val;
        }
        if let Some(t) = truncate {
            bytes.truncate(t % (bytes.len() + 1));
        }
        match serialize::from_bytes(&bytes) {
            // A surviving container is structurally valid by contract.
            Ok(back) => prop_assert!(back.validate().is_ok()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// INT8 quantisation keeps every element within half a quantisation
    /// step of the original for any sparsity.
    #[test]
    fn quantisation_error_bound_any_matrix(sparsity in 0.0f64..0.98, seed: u64) {
        let m = random_sparse(64, 64, sparsity, ValueDist::Normal { std: 0.05 }, seed);
        let enc = TcaBme::encode(&m);
        let q = QuantizedTcaBme::quantize(&enc);
        let back = q.dequantize().decode();
        for r in 0..64 {
            for c in 0..64 {
                let gt = enc.gt_index(r / 64, c / 64);
                let bound = q.scale(gt) * 0.51 + 1e-4;
                let d = (m.get(r, c).to_f32() - back.get(r, c).to_f32()).abs();
                prop_assert!(d <= bound, "({r},{c}): err {d} > bound {bound}");
            }
        }
    }

    /// SparTA's 2:4 component never holds more than 2 values per group.
    #[test]
    fn sparta_24_invariant(rows in 1usize..32, cols in 1usize..64, sparsity in 0.0f64..1.0, seed: u64) {
        let m = random_sparse(rows, cols, sparsity, ValueDist::Uniform, seed);
        let enc = SpartaFormat::encode(&m);
        let groups = enc.k_pad / 4;
        for r in 0..rows {
            for g in 0..groups {
                let kept = (0..2)
                    .filter(|slot| !enc.nm_values[(r * groups + g) * 2 + slot].is_zero())
                    .count();
                prop_assert!(kept <= 2);
            }
        }
    }
}

proptest! {
    // The SpMM correctness property runs the full simulated kernel, so
    // keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SpInfer-SpMM output equals the dense reference for arbitrary
    /// shapes, batch sizes and sparsities.
    #[test]
    fn spinfer_spmm_matches_reference(
        m in 1usize..150,
        k in 1usize..150,
        n in 1usize..40,
        sparsity in 0.0f64..0.95,
        seed: u64,
    ) {
        let w = random_sparse(m, k, sparsity, ValueDist::Uniform, seed);
        let x = random_dense(k, n, ValueDist::Uniform, seed ^ 0xABCD);
        let spec = GpuSpec::rtx4090();
        let handle = SpMMHandle::encode(&w);
        let run = handle.matmul(&spec, &x);
        let err = max_abs_diff(run.output.as_ref().unwrap(), &w.matmul_ref(&x));
        prop_assert!(err < 0.5, "err {err} at {m}x{k}x{n} s={sparsity:.2}");
    }

    /// Timing is positive and finite everywhere, weakly monotone in M,
    /// and strictly scales once the workload outgrows the launch ramp
    /// (sub-microsecond launches are latency-dominated, as on hardware).
    #[test]
    fn timing_sane_and_monotone(m in 768usize..1024, seed: u64) {
        let k = 512;
        let spec = GpuSpec::rtx4090();
        let w_small = random_sparse(m, k, 0.5, ValueDist::Uniform, seed);
        let w_big = random_sparse(4 * m, k, 0.5, ValueDist::Uniform, seed ^ 1);
        let x = random_dense(k, 16, ValueDist::Uniform, seed ^ 2);
        let t_small = SpMMHandle::encode(&w_small).matmul(&spec, &x).time_us();
        let t_big = SpMMHandle::encode(&w_big).matmul(&spec, &x).time_us();
        prop_assert!(t_small.is_finite() && t_small > 0.0);
        prop_assert!(t_big > t_small * 1.5, "big {t_big} vs small {t_small}");
    }
}

/// Deterministic helper used by the proptest block above.
#[test]
fn dense_matrix_transpose_is_involution() {
    let m = random_dense(33, 57, ValueDist::Uniform, 9);
    assert_eq!(m.transpose().transpose(), m);
    let z = DenseMatrix::zeros(5, 7);
    assert_eq!(z.transpose().rows(), 7);
}
