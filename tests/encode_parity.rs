//! Pins the two-pass parallel encoders to their serial semantics.
//!
//! The iron rule of the setup pipeline is that host parallelism must
//! never change a single output byte. For TCA-BME the tests compare
//! the complete serialize-v2 container — header, per-GroupTile
//! checksums, offsets, values including alignment padding, bitmaps —
//! produced by [`TcaBme::encode_with`] at several job counts against
//! [`TcaBme::encode_serial_oracle`], over random shapes (edge
//! dimensions included) and a non-default GroupTile geometry. The four
//! baseline formats (CSR, Tiled-CSL, BCSR, SparTA) are compared
//! field-for-field via `PartialEq`, and SparTA's directly-assembled
//! residual is additionally pinned to `Csr::encode` of the dense spill
//! matrix the old serial encoder built.
//!
//! The job count is process-global, so every test that flips it takes
//! [`jobs_lock`] and restores the default (0 = auto) before releasing.

use gpu_sim::exec;
use gpu_sim::fp16::Half;
use gpu_sim::matrix::{random_sparse, DenseMatrix, ValueDist};
use proptest::prelude::*;
use spinfer_baselines::{Bcsr, Csr, SpartaFormat, TiledCsl};
use spinfer_core::{serialize, TcaBme, TcaBmeConfig};
use std::sync::{Mutex, MutexGuard};

/// Serialises the jobs flip: tests in this binary run concurrently and
/// `exec::set_jobs` is process-global.
fn jobs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The full v2 wire bytes of one encoding — the strictest equality
/// available: it covers every array plus the per-GroupTile checksums.
fn v2_bytes(w: &TcaBme) -> Vec<u8> {
    serialize::to_bytes(w)
}

/// Asserts the parallel TCA-BME encoder reproduces the serial oracle's
/// bytes at jobs 1, 2, and 8. Must be called with `jobs_lock` held.
fn assert_tca_bme_parity(m: &DenseMatrix, config: TcaBmeConfig, label: &str) {
    let oracle = v2_bytes(&TcaBme::encode_serial_oracle(m, config));
    for jobs in [1usize, 2, 8] {
        exec::set_jobs(jobs);
        let parallel = v2_bytes(&TcaBme::encode_with(m, config));
        assert_eq!(
            parallel, oracle,
            "{label}: serialize-v2 bytes diverged from the serial oracle at jobs={jobs}"
        );
    }
    exec::set_jobs(0);
}

/// Encodes `m` in all four baseline formats at the current job count.
fn encode_baselines(m: &DenseMatrix) -> (Csr, TiledCsl, Bcsr, SpartaFormat) {
    (
        Csr::encode(m),
        TiledCsl::encode(m),
        Bcsr::encode(m),
        SpartaFormat::encode(m),
    )
}

/// Asserts all four baseline encoders produce identical containers at
/// jobs 1, 2, and 8. Must be called with `jobs_lock` held.
fn assert_baseline_parity(m: &DenseMatrix, label: &str) {
    exec::set_jobs(1);
    let serial = encode_baselines(m);
    for jobs in [2usize, 8] {
        exec::set_jobs(jobs);
        let parallel = encode_baselines(m);
        assert_eq!(parallel.0, serial.0, "{label}: CSR diverged at jobs={jobs}");
        assert_eq!(
            parallel.1, serial.1,
            "{label}: Tiled-CSL diverged at jobs={jobs}"
        );
        assert_eq!(
            parallel.2, serial.2,
            "{label}: BCSR diverged at jobs={jobs}"
        );
        assert_eq!(
            parallel.3, serial.3,
            "{label}: SparTA diverged at jobs={jobs}"
        );
    }
    exec::set_jobs(0);
}

/// Dimensions biased toward the grid boundaries the encoders cut at:
/// SparTA's 4-groups, BitmapTile/TCTile/BCSR edges (8/16), and the
/// 64-element GroupTile / Tiled-CSL tile edge, each with one-off
/// neighbours, plus interior values.
fn edge_dims() -> Vec<usize> {
    vec![1, 3, 4, 5, 7, 8, 15, 16, 17, 37, 63, 64, 65, 96]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn tca_bme_encode_matches_serial_oracle_at_every_job_count(
        rows in prop::sample::select(edge_dims()),
        cols in prop::sample::select(edge_dims()),
        sparsity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let _guard = jobs_lock();
        let m = random_sparse(rows, cols, sparsity, ValueDist::Uniform, seed);
        assert_tca_bme_parity(&m, TcaBmeConfig::default(), "default 64x64 GroupTile");
        // A non-default geometry exercises different band/tile cuts.
        let narrow = TcaBmeConfig { gt_rows: 16, gt_cols: 32 };
        assert_tca_bme_parity(&m, narrow, "16x32 GroupTile");
    }

    #[test]
    fn baseline_encoders_match_across_job_counts(
        rows in prop::sample::select(edge_dims()),
        cols in prop::sample::select(edge_dims()),
        sparsity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let _guard = jobs_lock();
        let m = random_sparse(rows, cols, sparsity, ValueDist::Uniform, seed);
        assert_baseline_parity(&m, "random point");
    }
}

#[test]
fn hero_slice_parity_and_checksum_stability() {
    let _guard = jobs_lock();
    // A multi-GroupTile slice of the hero point (28672x8192 @ 0.6):
    // big enough that every band split is non-trivial at jobs 8.
    let m = random_sparse(256, 192, 0.6, ValueDist::Uniform, 42);
    assert_tca_bme_parity(&m, TcaBmeConfig::default(), "hero slice");
    assert_baseline_parity(&m, "hero slice");

    // The checksum vector itself is also job-count invariant (it is
    // what the v2 container embeds and the checked kernel verifies).
    exec::set_jobs(1);
    let enc = TcaBme::encode(&m);
    let serial_sums = enc.gtile_checksums();
    for jobs in [2usize, 8] {
        exec::set_jobs(jobs);
        assert_eq!(enc.gtile_checksums(), serial_sums, "jobs={jobs}");
    }
    exec::set_jobs(0);
}

#[test]
fn empty_and_full_matrices_encode_identically() {
    let _guard = jobs_lock();
    let zero = DenseMatrix::zeros(64, 64);
    assert_tca_bme_parity(&zero, TcaBmeConfig::default(), "all-zero");
    assert_baseline_parity(&zero, "all-zero");
    let dense = random_sparse(64, 64, 0.0, ValueDist::Uniform, 7);
    assert_tca_bme_parity(&dense, TcaBmeConfig::default(), "fully dense");
    assert_baseline_parity(&dense, "fully dense");
}

#[test]
fn sparta_residual_matches_csr_of_dense_spill() {
    let _guard = jobs_lock();
    for jobs in [1usize, 2, 8] {
        exec::set_jobs(jobs);
        let m = random_sparse(96, 70, 0.4, ValueDist::Uniform, 11);
        let enc = SpartaFormat::encode(&m);
        // Reconstruct the dense spill matrix the old encoder built:
        // everything past the first two non-zeros of each 4-group.
        let mut spill = DenseMatrix::zeros(m.rows(), m.cols());
        for r in 0..m.rows() {
            for g in 0..m.cols().div_ceil(4) {
                let mut kept = 0usize;
                for i in 0..4 {
                    let c = g * 4 + i;
                    if c >= m.cols() {
                        break;
                    }
                    let v = m.get(r, c);
                    if v.is_zero() {
                        continue;
                    }
                    if kept < 2 {
                        kept += 1;
                    } else {
                        spill.set(r, c, v);
                    }
                }
            }
        }
        assert_eq!(
            enc.residual,
            Csr::encode(&spill),
            "residual must be field-identical to CSR of the spill at jobs={jobs}"
        );
        assert!(enc.residual.values.iter().all(|v| *v != Half::ZERO));
    }
    exec::set_jobs(0);
}
