//! Property suite pinning the vectorized hot paths to their retained
//! scalar oracles, bit for bit.
//!
//! Three pairs are pinned:
//!
//! * the flat/SIMD `mma` MAC panels (`mma_m16n8k16_f32`,
//!   `mma_m16n8k16_bslice`, and the N-tile-batched
//!   `mma_m16n8k16_bslice_ntiles`) against the per-element scalar loops;
//! * the set-bit-sweep SMBD decode against the per-lane
//!   `MaskedPopCount` formulation of Algorithm 2;
//! * the batched FP16 → `f32` LUT conversion against per-element
//!   `Half::to_f32`.
//!
//! Equality is exact `f32` bit equality *and* counter-stream equality —
//! the invariant that lets the `simd` feature (and the flat rewrite
//! underneath it) claim "wall-clock only". CI runs this suite both with
//! and without `--features gpu-sim/simd`, so whichever MAC panel is
//! compiled in is the one pinned.

use gpu_sim::fault::{FaultInjector, FaultPlan};
use gpu_sim::fp16::{f16_to_f32_slice, Half};
use gpu_sim::tensor_core::{
    mma_m16n8k16_bslice, mma_m16n8k16_bslice_ntiles, mma_m16n8k16_bslice_scalar, mma_m16n8k16_f32,
    mma_m16n8k16_f32_scalar, FragC, MAX_NTILES, MMA_K, MMA_M, MMA_N,
};
use gpu_sim::Counters;
use proptest::prelude::*;
use spinfer_core::smbd::{decode_bitmap_tile_f, decode_bitmap_tile_scalar};

/// Deterministic f32 stream from SplitMix64 — ordinary magnitudes with
/// sign variety, the distribution the kernels actually multiply.
fn mix(state: &mut u64) -> f32 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 22) as f32 - 2.0
}

fn a_tile(seed: u64) -> [[f32; MMA_K]; MMA_M] {
    let mut s = seed;
    let mut a = [[0.0f32; MMA_K]; MMA_M];
    for row in a.iter_mut() {
        for v in row.iter_mut() {
            *v = mix(&mut s);
        }
    }
    a
}

fn seeded_acc(seed: u64) -> FragC {
    let mut s = seed;
    let mut acc = FragC::zero();
    for lane in acc.regs.iter_mut() {
        for reg in lane.iter_mut() {
            *reg = mix(&mut s);
        }
    }
    acc
}

/// Exact bitwise equality of two accumulator fragments — `==` on f32
/// would let `-0.0 == +0.0` slip through.
fn assert_acc_bits(a: &FragC, b: &FragC) {
    for (la, lb) in a.regs.iter().zip(&b.regs) {
        for (ra, rb) in la.iter().zip(lb) {
            assert_eq!(ra.to_bits(), rb.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mma_f32_matches_scalar_oracle(a_seed: u64, b_seed: u64, acc_seed: u64) {
        let a = a_tile(a_seed);
        let mut s = b_seed;
        let mut b = [[0.0f32; MMA_N]; MMA_K];
        for row in b.iter_mut() {
            for v in row.iter_mut() {
                *v = mix(&mut s);
            }
        }
        let mut acc_fast = seeded_acc(acc_seed);
        let mut acc_oracle = acc_fast.clone();
        let mut c_fast = Counters::new();
        let mut c_oracle = Counters::new();
        mma_m16n8k16_f32(&mut c_fast, &a, &b, &mut acc_fast);
        mma_m16n8k16_f32_scalar(&mut c_oracle, &a, &b, &mut acc_oracle);
        assert_acc_bits(&acc_fast, &acc_oracle);
        prop_assert_eq!(c_fast, c_oracle);
    }

    #[test]
    fn mma_bslice_matches_scalar_oracle(
        a_seed: u64,
        b_seed: u64,
        acc_seed: u64,
        ld_extra in 0usize..32,
    ) {
        let a = a_tile(a_seed);
        let ld = MMA_N + ld_extra;
        let mut s = b_seed;
        let b: Vec<f32> = (0..(MMA_K - 1) * ld + MMA_N).map(|_| mix(&mut s)).collect();
        let mut acc_fast = seeded_acc(acc_seed);
        let mut acc_oracle = acc_fast.clone();
        let mut c_fast = Counters::new();
        let mut c_oracle = Counters::new();
        mma_m16n8k16_bslice(&mut c_fast, &a, &b, ld, &mut acc_fast);
        mma_m16n8k16_bslice_scalar(&mut c_oracle, &a, &b, ld, &mut acc_oracle);
        assert_acc_bits(&acc_fast, &acc_oracle);
        prop_assert_eq!(c_fast, c_oracle);
    }

    #[test]
    fn mma_ntiles_matches_per_tile_scalar_oracle(
        a_seed: u64,
        b_seed: u64,
        acc_seed: u64,
        ntiles in 1usize..=MAX_NTILES,
    ) {
        // The batched call against `ntiles` separate *scalar* calls:
        // this chains batching and vectorization back to the original
        // formulation in one step.
        let a = a_tile(a_seed);
        let ld = ntiles * MMA_N;
        let mut s = b_seed;
        let b: Vec<f32> = (0..MMA_K * ld).map(|_| mix(&mut s)).collect();
        let mut accs_fast: Vec<FragC> =
            (0..ntiles).map(|j| seeded_acc(acc_seed ^ j as u64)).collect();
        let mut accs_oracle = accs_fast.clone();
        let mut c_fast = Counters::new();
        let mut c_oracle = Counters::new();
        mma_m16n8k16_bslice_ntiles(&mut c_fast, &a, &b, ld, &mut accs_fast);
        for (j, acc) in accs_oracle.iter_mut().enumerate() {
            mma_m16n8k16_bslice_scalar(&mut c_oracle, &a, &b[j * MMA_N..], ld, acc);
        }
        for (fast, oracle) in accs_fast.iter().zip(&accs_oracle) {
            assert_acc_bits(fast, oracle);
        }
        prop_assert_eq!(c_fast, c_oracle);
    }

    #[test]
    fn smbd_sweep_matches_scalar_oracle(
        bitmap: u64,
        val_seed: u64,
        base in 0usize..16,
        smem_base in 0u64..512,
        site_key: u64,
    ) {
        // Random bitmaps plus the two extremes the generator rarely
        // hits by itself.
        for bm in [bitmap, 0, u64::MAX] {
            let need = base + bm.count_ones() as usize;
            let mut s = val_seed;
            let values: Vec<Half> =
                (0..need).map(|_| Half::from_f32(mix(&mut s))).collect();
            let mut c_sweep = Counters::new();
            let mut c_oracle = Counters::new();
            let sweep = decode_bitmap_tile_f(
                &mut c_sweep, bm, &values, base, smem_base, None, site_key,
            );
            let oracle = decode_bitmap_tile_scalar(
                &mut c_oracle, bm, &values, base, smem_base, None, site_key,
            );
            prop_assert_eq!(sweep, oracle);
            prop_assert_eq!(c_sweep, c_oracle, "counter stream drifted (bm={:#x})", bm);

            // Same parity under an always-firing injector: identical
            // fault sites, poison values, and fault accounting.
            let plan = FaultPlan { fp16_poison_rate: 1.0, ..FaultPlan::default() };
            let inj = FaultInjector::new(plan);
            let mut cf_sweep = Counters::new();
            let mut cf_oracle = Counters::new();
            let sweep = decode_bitmap_tile_f(
                &mut cf_sweep, bm, &values, base, smem_base, Some(&inj), site_key,
            );
            let oracle = decode_bitmap_tile_scalar(
                &mut cf_oracle, bm, &values, base, smem_base, Some(&inj), site_key,
            );
            prop_assert_eq!(sweep, oracle);
            prop_assert_eq!(cf_sweep, cf_oracle);
        }
    }

    #[test]
    fn smbd_overrun_agrees_with_oracle(bitmap: u64, short_by in 1usize..8) {
        // Truncated value buffers must fail identically on both paths.
        let pop = bitmap.count_ones() as usize;
        let len = pop.saturating_sub(short_by);
        let values = vec![Half::ONE; len];
        let mut c_sweep = Counters::new();
        let mut c_oracle = Counters::new();
        let sweep = decode_bitmap_tile_f(&mut c_sweep, bitmap, &values, 0, 0, None, 0);
        let oracle = decode_bitmap_tile_scalar(&mut c_oracle, bitmap, &values, 0, 0, None, 0);
        prop_assert_eq!(sweep, oracle);
        prop_assert_eq!(c_sweep, c_oracle);
    }

    #[test]
    fn f16_slice_conversion_matches_per_element(seed: u64, len in 0usize..200) {
        let mut s = seed;
        let src: Vec<Half> = (0..len).map(|_| Half::from_f32(mix(&mut s))).collect();
        let mut batched = vec![0.0f32; len];
        f16_to_f32_slice(&src, &mut batched);
        for (b, h) in batched.iter().zip(&src) {
            assert_eq!(b.to_bits(), h.to_f32().to_bits());
        }
    }
}
