//! Cross-crate integration: prune → encode → simulated SpMM → serve.

use spinfer_suite::baselines::kernels::{CublasGemm, FlashLlmSpmm, SputnikSpmm};
use spinfer_suite::core::spmm::SpmmKernel;
use spinfer_suite::core::SpMMHandle;
use spinfer_suite::gpu_sim::matrix::{max_abs_diff, random_dense, ValueDist};
use spinfer_suite::gpu_sim::GpuSpec;
use spinfer_suite::llm::{simulate, Framework, InferenceConfig, ModelConfig};
use spinfer_suite::pruning::{reconstruction_error, wanda_prune, Calibration};

#[test]
fn pruned_layer_flows_through_the_whole_stack() {
    let spec = GpuSpec::rtx4090();
    let (m, k, n) = (512usize, 256usize, 16usize);

    // Prune.
    let dense = random_dense(m, k, ValueDist::Normal { std: 0.05 }, 1001);
    let calib = Calibration::synthetic(k, 64, 1002);
    let pruned = wanda_prune(&dense, &calib, 0.6);
    assert!((pruned.sparsity() - 0.6).abs() < 0.02);
    assert!(reconstruction_error(&dense, &pruned, &calib) < 0.6);

    // Encode + multiply on every kernel; all must agree with the
    // reference product of the *pruned* weights.
    let x = random_dense(k, n, ValueDist::Normal { std: 0.5 }, 1003);
    let reference = pruned.matmul_ref(&x);

    let handle = SpMMHandle::encode(&pruned);
    let spinfer = handle.matmul(&spec, &x);
    assert!(max_abs_diff(spinfer.output.as_ref().unwrap(), &reference) < 0.2);

    let cublas = CublasGemm::new().run(&spec, &pruned, &x);
    assert!(max_abs_diff(cublas.output.as_ref().unwrap(), &reference) < 0.2);

    let flash = FlashLlmSpmm::new().run(&spec, &pruned, &x);
    assert!(max_abs_diff(flash.output.as_ref().unwrap(), &reference) < 0.2);

    let sputnik = SputnikSpmm::new().run(&spec, &pruned, &x);
    assert!(max_abs_diff(sputnik.output.as_ref().unwrap(), &reference) < 0.2);

    // The sparse kernel should also be the fastest at this shape.
    assert!(spinfer.time_us() < cublas.time_us());
    assert!(spinfer.time_us() < flash.time_us());
}

#[test]
fn serving_projection_uses_the_same_sparsity() {
    let spec = GpuSpec::rtx4090();
    let mk = |sparsity| {
        simulate(
            &spec,
            &InferenceConfig {
                model: ModelConfig::opt_13b(),
                framework: Framework::SpInfer,
                sparsity,
                batch: 16,
                input_len: 64,
                output_len: 128,
                tp: 1,
            },
        )
    };
    let r50 = mk(0.5);
    let r70 = mk(0.7);
    // Higher sparsity: less memory, more throughput.
    assert!(r70.memory.weights < r50.memory.weights);
    assert!(r70.tokens_per_sec > r50.tokens_per_sec);
}

#[test]
fn kernel_timing_consistency_between_both_devices() {
    // The same workload must be slower on the lower-bandwidth A6000 in
    // the memory-bound regime.
    let spec4090 = GpuSpec::rtx4090();
    let speca6000 = GpuSpec::a6000();
    let w = random_dense(1024, 1024, ValueDist::Uniform, 1004);
    let x = random_dense(1024, 16, ValueDist::Uniform, 1005);
    let t4090 = CublasGemm::new().run(&spec4090, &w, &x).time_us();
    let ta6000 = CublasGemm::new().run(&speca6000, &w, &x).time_us();
    assert!(ta6000 > t4090);
    let bw_ratio = spec4090.dram_bandwidth / speca6000.dram_bandwidth;
    let t_ratio = ta6000 / t4090;
    assert!(
        (t_ratio / bw_ratio - 1.0).abs() < 0.35,
        "ratio {t_ratio} vs bw {bw_ratio}"
    );
}
