//! `SpmmKernel` trait conformance, pinned for every registry entry.
//!
//! The contract (see `spinfer_core::spmm::SpmmKernel`):
//!
//! 1. `run(spec, w, x)` ≡ `encode` + `launch` on a bare [`LaunchCtx`],
//!    bit-identically — output bits, per-launch counter digests, and
//!    simulated-time bits.
//! 2. Results are bit-identical at any host job count (1 vs 8 here).
//! 3. Attaching a trace sink is output-neutral and actually records
//!    events.
//! 4. A kernel's own encoding passes its `validate`.
//!
//! Everything runs inside one `#[test]` body: `exec::set_jobs` is
//! process-global, so the job sweep must not interleave with another
//! test thread in this binary.

use gpu_sim::exec;
use gpu_sim::matrix::{checksum_f32, random_dense, random_sparse, ValueDist};
use gpu_sim::trace::TraceSink;
use gpu_sim::GpuSpec;
use spinfer_baselines::registry;
use spinfer_core::spmm::{LaunchCtx, SpmmRun};

/// The complete observable signature of one run: output checksum plus,
/// per launch, (kernel name, counter digest, simulated-time bits).
fn signature(run: &SpmmRun) -> (u64, Vec<(String, u64, u64)>) {
    let out = checksum_f32(run.output.as_ref().expect("functional output"));
    let launches = run
        .chain
        .launches
        .iter()
        .map(|l| (l.name.clone(), l.counters.digest(), l.time_us().to_bits()))
        .collect();
    (out, launches)
}

#[test]
fn every_registered_kernel_honors_the_contract() {
    let spec = GpuSpec::rtx4090();
    let (m, k, n) = (128usize, 128usize, 16usize);
    let w = random_sparse(m, k, 0.6, ValueDist::Uniform, 2024);
    let x = random_dense(k, n, ValueDist::Uniform, 2025);

    let kernels = registry();
    assert!(kernels.len() >= 8, "registry lost kernels");
    for kernel in kernels {
        let name = kernel.name();

        // Reference signature at the default job count.
        exec::set_jobs(0);
        let reference = signature(&kernel.run(&spec, &w, &x));

        // A kernel's own encoding validates, and `run` decomposes into
        // `encode` + `launch` on a bare context with the same bits.
        let enc = kernel.encode(&w);
        kernel
            .validate(&enc)
            .unwrap_or_else(|e| panic!("{name}: own encoding must validate: {e}"));
        let launched = kernel
            .launch(&LaunchCtx::new(&spec), &enc, &x)
            .unwrap_or_else(|e| panic!("{name}: bare-context launch failed: {e}"));
        assert_eq!(
            signature(&launched),
            reference,
            "{name}: run vs encode+launch"
        );

        // Job-count invariance, and trace-sink neutrality at each job
        // count: the traced signature must equal the untraced reference.
        for jobs in [1usize, 8] {
            exec::set_jobs(jobs);
            let run = kernel.run(&spec, &w, &x);
            assert_eq!(signature(&run), reference, "{name}: jobs={jobs}");

            let sink = TraceSink::new();
            let traced = kernel
                .launch(&LaunchCtx::new(&spec).with_sink(&sink), &enc, &x)
                .unwrap_or_else(|e| panic!("{name}: traced launch failed: {e}"));
            assert_eq!(signature(&traced), reference, "{name}: traced, jobs={jobs}");
            assert!(
                !sink.finish().events.is_empty(),
                "{name}: trace sink recorded nothing at jobs={jobs}"
            );
        }
        exec::set_jobs(0);
    }
}
