//! Trace determinism (see `gpu_sim::trace` and `spinfer_obs`).
//!
//! Two invariants, checked end to end through the functional SpInfer
//! kernel and the host worker pool:
//!
//! 1. **Job-count invariance** — the recorded span stream (names, ids,
//!    sim-timestamps, post-sort ordering) is a pure function of the
//!    simulated work, so `--jobs 1` and `--jobs 8` produce *equal*
//!    traces, not merely equivalent ones.
//! 2. **Off-path neutrality** — attaching a sink never perturbs the
//!    simulation: output bits, counters, and simulated-time bits match
//!    the sink-free run exactly, and a sink nobody writes to stays
//!    empty.
//!
//! Plus the exporter contract: the emitted Chrome-trace JSON validates,
//! and `cat:"phase"` spans account for the kernel's simulated time to
//! within 1%.

use gpu_sim::exec;
use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};
use gpu_sim::trace::TraceSink;
use gpu_sim::GpuSpec;
use spinfer_core::spmm::LaunchCtx;
use spinfer_core::{SpinferSpmm, SpmmConfig, TcaBme};
use std::sync::Arc;

/// One `#[test]` on purpose: `exec::set_jobs` is process-global (see the
/// note in `tests/determinism.rs`).
#[test]
fn trace_streams_are_job_count_invariant_and_side_effect_free() {
    let spec = GpuSpec::rtx4090();
    // Several block rows and split-K, so the trace covers the fan-out
    // path and the reduction launch.
    let w = random_sparse(384, 512, 0.6, ValueDist::Uniform, 7);
    let x = random_dense(512, 16, ValueDist::Uniform, 8);
    let enc = TcaBme::encode(&w);
    let kernel = SpinferSpmm {
        config: SpmmConfig {
            split_k: 2, // exercise the reduction span
            ..SpmmConfig::default()
        },
    };

    let traced_at = |jobs: usize| {
        exec::set_jobs(jobs);
        let sink = Arc::new(TraceSink::new());
        exec::set_task_trace(Some(sink.clone()));
        let run = kernel.run_traced(&spec, &enc, &x, &sink);
        exec::set_task_trace(None);
        exec::set_jobs(0);
        (run, sink.finish())
    };

    let (run1, t1) = traced_at(1);
    let (run8, t8) = traced_at(8);
    assert!(!t1.events.is_empty(), "trace recorded nothing");
    // Identical span streams: every event (name, track, timestamp, kind,
    // flow id) and every track label, in the same canonical order.
    assert_eq!(t1, t8, "trace stream differs between --jobs 1 and 8");
    assert_eq!(run1.output, run8.output, "traced output differs by jobs");
    assert_eq!(
        run1.chain.merged_counters(),
        run8.chain.merged_counters(),
        "traced counters differ by jobs"
    );

    // Off-path neutrality: the sink-free run is bit-identical.
    let plain = kernel.run(&spec, &enc, &x);
    assert_eq!(plain.output, run1.output);
    assert_eq!(plain.chain.merged_counters(), run1.chain.merged_counters());
    assert_eq!(plain.time_us().to_bits(), run1.time_us().to_bits());

    // A sink that is attached to nothing stays empty — recording is
    // opt-in per call site, there is no ambient collection.
    let idle = TraceSink::new();
    let _ = kernel.run(&spec, &enc, &x);
    assert!(idle.is_empty(), "unattached sink collected events");
    assert!(idle.finish().events.is_empty());

    // Exporter contract on the recorded stream.
    let json = spinfer_obs::export(&t1);
    let stats = spinfer_obs::validate(&json).expect("emitted trace must validate");
    assert!(stats.spans > 0 && stats.flow_pairs > 0);
    let sim_us = run1.time_us();
    let rel = (stats.phase_total_us - sim_us).abs() / sim_us;
    assert!(
        rel < 0.01,
        "phase spans sum to {} us, kernel simulated {sim_us} us",
        stats.phase_total_us
    );
    // Round-trip: the validator consumes what the exporter wrote, so the
    // parsed phase total agrees with the in-memory Trace (only FP
    // summation order differs).
    let in_memory: f64 = t1
        .phase_names("phase")
        .iter()
        .map(|n| t1.phase_total_us(n))
        .sum();
    assert!(
        (stats.phase_total_us - in_memory).abs() < 1e-6 * in_memory.abs().max(1.0),
        "validator total {} vs trace total {in_memory}",
        stats.phase_total_us
    );
}

/// Every registered kernel — not just SpInfer — emits a valid Chrome
/// trace through a `LaunchCtx` sink, and its `cat:"phase"` spans
/// account for the launch chain's simulated time (baselines get one
/// `launch` span per chain entry from `emit_chain_trace`).
#[test]
fn every_registered_kernel_emits_a_valid_trace() {
    let spec = GpuSpec::rtx4090();
    let w = random_sparse(128, 128, 0.6, ValueDist::Uniform, 17);
    let x = random_dense(128, 16, ValueDist::Uniform, 18);
    for kernel in spinfer_baselines::registry() {
        let name = kernel.name();
        let enc = kernel.encode(&w);
        let sink = TraceSink::new();
        let run = kernel
            .launch(&LaunchCtx::new(&spec).with_sink(&sink), &enc, &x)
            .unwrap_or_else(|e| panic!("{name}: traced launch failed: {e}"));
        let json = spinfer_obs::export(&sink.finish());
        let stats = spinfer_obs::validate(&json)
            .unwrap_or_else(|e| panic!("{name}: emitted trace is invalid: {e}"));
        assert!(stats.spans > 0, "{name}: no spans recorded");
        let sim_us = run.time_us();
        let rel = (stats.phase_total_us - sim_us).abs() / sim_us.max(1e-9);
        assert!(
            rel < 0.01,
            "{name}: phase spans sum to {} us, chain simulated {sim_us} us",
            stats.phase_total_us
        );
    }
}
