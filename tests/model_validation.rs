//! Validation of the analytical timing model against the discrete-event
//! pipeline simulator, and persistence → kernel integration.

use gpu_sim::pipeline::{simulate_block, StageCosts};
use gpu_sim::timing::{BASE_MEM_EFF, INT_WIPC, SMEM_TPC};
use gpu_sim::GpuSpec;
use spinfer_suite::core::{serialize, FormatStats, SpinferSpmm, TcaBme};
use spinfer_suite::gpu_sim::matrix::{max_abs_diff, random_dense, random_sparse, ValueDist};

/// Derives SpInfer's per-iteration stage costs at the hero shape and
/// checks the discrete-event pipeline agrees with the analytic
/// per-iteration steady state within 20%.
#[test]
fn pipeline_simulation_validates_analytic_spmm_model() {
    let spec = GpuSpec::rtx4090();
    let (m, k, n, s) = (28672usize, 8192usize, 16usize, 0.6f64);
    let stats = FormatStats::synthetic(m, k, s);
    let run = SpinferSpmm::new().estimate(&spec, &stats, n);
    let launch = &run.chain.launches[0];
    let grid = launch.shape.grid_blocks as f64;
    let iters = launch.shape.iters_per_block;

    // Per-block, per-iteration stage costs in cycles, from the counters.
    let occ = launch.timing.occupancy;
    let resident = (grid).min(f64::from(spec.sm_count) * f64::from(occ.blocks_per_sm));
    let c = &launch.counters;
    // DRAM cycles available to one block per cycle of wall time.
    let bpc_per_block = spec.dram_bandwidth / spec.clock_hz / resident * BASE_MEM_EFF;
    let w_bytes_iter = launch.timing.dram_bytes as f64 * 0.92 / grid / iters; // W dominates.
    let x_bytes_iter = launch.timing.dram_bytes as f64 * 0.08 / grid / iters;
    let decode_cycles = (c.cuda_int_insts as f64 / INT_WIPC
        + (c.smem_load_transactions + c.smem_store_transactions) as f64 / SMEM_TPC)
        / grid
        / iters
        / f64::from(occ.blocks_per_sm).max(1.0);
    let mma_cycles =
        c.mma_insts as f64 * 4.0 / grid / iters / f64::from(occ.blocks_per_sm).max(1.0);

    let costs = StageCosts {
        load_w: (w_bytes_iter / bpc_per_block) as u64,
        load_x: (x_bytes_iter / bpc_per_block) as u64,
        decode: decode_cycles as u64,
        mma: mma_cycles as u64,
    };
    let sim = simulate_block(iters as usize, 2, costs);
    let waves = (grid / resident).ceil();
    let sim_total_sec = spec.cycles_to_sec(sim.total_cycles as f64 * waves);
    let analytic_sec = launch.timing.time_sec;
    let ratio = sim_total_sec / analytic_sec;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "pipeline {sim_total_sec:.2e}s vs analytic {analytic_sec:.2e}s (ratio {ratio:.2})"
    );
}

/// The pipeline simulator reproduces the AsyncPipe ablation's direction:
/// depth-1 is slower than depth-2, by a modest factor when memory-bound.
#[test]
fn pipeline_asyncpipe_ablation_direction() {
    // Memory-heavy mix typical of the decode regime.
    let c = StageCosts {
        load_w: 900,
        load_x: 100,
        decode: 300,
        mma: 60,
    };
    let d2 = simulate_block(128, 2, c);
    let d1 = simulate_block(128, 1, c);
    let slowdown = d1.total_cycles as f64 / d2.total_cycles as f64;
    assert!(slowdown > 1.02 && slowdown < 1.6, "slowdown {slowdown}");
}

/// Serialized weights round-trip through the kernel: encode → bytes →
/// decode → SpMM must equal the original product exactly.
#[test]
fn serialized_weights_produce_identical_spmm_results() {
    let spec = GpuSpec::rtx4090();
    let w = random_sparse(256, 192, 0.55, ValueDist::Uniform, 91);
    let x = random_dense(192, 16, ValueDist::Uniform, 92);
    let enc = TcaBme::encode(&w);
    let restored = serialize::from_bytes(&serialize::to_bytes(&enc)).expect("valid container");
    let kernel = SpinferSpmm::new();
    let a = kernel.run(&spec, &enc, &x);
    let b = kernel.run(&spec, &restored, &x);
    assert_eq!(
        max_abs_diff(a.output.as_ref().unwrap(), b.output.as_ref().unwrap()),
        0.0,
        "restored weights must be bit-identical"
    );
    assert_eq!(a.chain.merged_counters(), b.chain.merged_counters());
}
