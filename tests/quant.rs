//! Cross-version container compatibility and INT8 round-trip suite.
//!
//! The payload refactor turned the serializer generic over the value
//! precision; these tests pin what that must NOT have changed — v2
//! FP16 containers decode bit-identically to their pre-refactor layout
//! — and what the new v3 INT8 container must guarantee: exact `i8` +
//! scale round-trips at arbitrary shapes/sparsities, typed
//! [`DecodeError::PayloadMismatch`] on cross-precision reads, and
//! detection of truncation and bit damage anywhere in the stream.

use gpu_sim::matrix::{random_sparse, ValueDist};
use proptest::prelude::*;
use spinfer_core::serialize::{self, DecodeError};
use spinfer_core::TcaBme;

/// Fixed framing around the variable sections: 8 B magic, 56 B header
/// (seven u64 fields), five u64 section-length words (checksums,
/// offsets, values, bitmaps, scales).
const V3_FRAMING: usize = 8 + 56 + 5 * 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// v2 serialisation followed by decode reproduces the exact
    /// encoding, and re-serialising the decoded container reproduces
    /// the exact bytes — the strongest statement that the generic
    /// writer kept the FP16 wire format bit-identical.
    #[test]
    fn v2_roundtrip_is_bit_identical(
        rows in 1usize..200,
        cols in 1usize..200,
        sparsity in 0.0f64..0.99,
        seed: u64,
    ) {
        let m = random_sparse(rows, cols, sparsity, ValueDist::Uniform, seed);
        let enc = TcaBme::encode(&m);
        let bytes = serialize::to_bytes(&enc);
        let back = serialize::from_bytes(&bytes).expect("own bytes must decode");
        prop_assert_eq!(&back, &enc);
        prop_assert_eq!(serialize::to_bytes(&back), bytes);
    }

    /// v3 round-trips the INT8 codes and the per-GroupTile scales
    /// exactly (scales compared at the bit level), at any shape and
    /// sparsity, and its total length matches the container's own
    /// storage accounting plus fixed framing.
    #[test]
    fn v3_roundtrip_is_exact(
        rows in 1usize..200,
        cols in 1usize..200,
        sparsity in 0.0f64..0.99,
        seed: u64,
    ) {
        let m = random_sparse(rows, cols, sparsity, ValueDist::Normal { std: 0.05 }, seed);
        let q = TcaBme::encode(&m).quantize_int8();
        let bytes = serialize::to_bytes_int8(&q);
        prop_assert_eq!(
            bytes.len(),
            q.storage_bytes() + V3_FRAMING + 4 * q.tiles.num_gtiles()
        );
        let back = serialize::from_bytes_int8(&bytes).expect("own bytes must decode");
        prop_assert_eq!(&back.tiles, &q.tiles);
        let a: Vec<u32> = back.scales.iter().map(|s| s.to_bits()).collect();
        let b: Vec<u32> = q.scales.iter().map(|s| s.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    /// Every truncation point of a v3 container is rejected — no prefix
    /// of a valid stream parses as a (different) valid container.
    #[test]
    fn v3_rejects_every_truncation(sparsity in 0.2f64..0.8, seed: u64) {
        let m = random_sparse(64, 64, sparsity, ValueDist::Uniform, seed);
        let q = TcaBme::encode(&m).quantize_int8();
        let bytes = serialize::to_bytes_int8(&q);
        // Sample prefixes densely near section boundaries and sparsely
        // in between (full scan is quadratic in container size).
        for cut in (0..bytes.len()).step_by(7).chain(bytes.len() - 9..bytes.len()) {
            prop_assert!(
                serialize::from_bytes_int8(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes parsed",
                bytes.len()
            );
        }
    }

    /// A single flipped bit anywhere in the checksummed payload region
    /// (codes or bitmaps) of a v3 container is detected.
    #[test]
    fn v3_detects_payload_bit_damage(seed: u64, bit_seed: u64) {
        let m = random_sparse(96, 64, 0.5, ValueDist::Uniform, seed);
        let q = TcaBme::encode(&m).quantize_int8();
        prop_assert!(q.tiles.nnz > 0, "50% sparsity must leave non-zeros");
        let bytes = serialize::to_bytes_int8(&q);
        // The code section starts after magic, header, checksum and
        // offset sections; it plus the bitmap section are checksummed.
        let ngt = q.tiles.num_gtiles();
        let codes_start =
            8 + 56 + 8 + 4 * ngt + 8 + 4 * q.tiles.gtile_offsets.len() + 8;
        let payload_len = q.tiles.values.len() + 8 + 8 * q.tiles.bitmaps.len();
        let bit = (bit_seed as usize) % (payload_len * 8);
        let (mut byte, shift) = (codes_start + bit / 8, bit % 8);
        // Skip the bitmap-section length word: damaging it reports
        // Truncated/Inconsistent instead of Checksum, which is fine but
        // not what this test pins.
        let bm_len_word = codes_start + q.tiles.values.len();
        if (bm_len_word..bm_len_word + 8).contains(&byte) {
            byte += 8;
        }
        let mut bad = bytes.clone();
        bad[byte] ^= 1 << shift;
        let err = serialize::from_bytes_int8(&bad).unwrap_err();
        prop_assert!(
            matches!(
                err,
                DecodeError::Checksum { .. }
                    | DecodeError::Inconsistent(_)
                    | DecodeError::Integrity(_)
            ),
            "flip at byte {byte} bit {shift} slipped through: {err:?}"
        );
    }
}

#[test]
fn cross_version_reads_fail_with_payload_mismatch() {
    let m = random_sparse(64, 64, 0.5, ValueDist::Uniform, 7);
    let enc = TcaBme::encode(&m);
    let v2 = serialize::to_bytes(&enc);
    let v3 = serialize::to_bytes_int8(&enc.quantize_int8());

    // FP16 reader on an INT8 container and vice versa: typed mismatch,
    // with the precision names the payload abstraction declares.
    let err = serialize::from_bytes(&v3).unwrap_err();
    assert_eq!(
        err,
        DecodeError::PayloadMismatch {
            expected: "fp16",
            got: "int8"
        }
    );
    assert_eq!(
        err.to_string(),
        "container carries int8 values but this reader expects fp16"
    );
    assert_eq!(
        serialize::from_bytes_int8(&v2).unwrap_err(),
        DecodeError::PayloadMismatch {
            expected: "int8",
            got: "fp16"
        }
    );

    // A v1-magic stream (checksum-free FP16) is also the wrong payload
    // for the INT8 reader — the magic alone decides, before any parse.
    let mut v1 = v2;
    v1[7] = 0x01;
    assert_eq!(
        serialize::from_bytes_int8(&v1).unwrap_err(),
        DecodeError::PayloadMismatch {
            expected: "int8",
            got: "fp16"
        }
    );

    // An unknown version is BadMagic, not a mismatch.
    let mut v9 = serialize::to_bytes(&enc);
    v9[7] = 0x09;
    assert_eq!(
        serialize::from_bytes(&v9).unwrap_err(),
        DecodeError::BadMagic
    );
    assert_eq!(
        serialize::from_bytes_int8(&v9).unwrap_err(),
        DecodeError::BadMagic
    );
}

#[test]
fn v2_golden_bytes_are_stable_post_refactor() {
    // A tiny deterministic matrix with a hand-checkable prefix: the
    // generic writer must produce the same header the concrete FP16
    // writer always did.
    let m = random_sparse(16, 16, 0.5, ValueDist::Uniform, 11);
    let enc = TcaBme::encode(&m);
    let bytes = serialize::to_bytes(&enc);
    assert_eq!(&bytes[..8], b"TCABME\x00\x02");
    let field =
        |i: usize| u64::from_le_bytes(bytes[8 + 8 * i..16 + 8 * i].try_into().unwrap()) as usize;
    assert_eq!(field(0), 16, "m");
    assert_eq!(field(1), 16, "k");
    assert_eq!(field(2), enc.m_pad, "m_pad");
    assert_eq!(field(3), enc.k_pad, "k_pad");
    assert_eq!(field(6), enc.nnz, "nnz");
    // And the whole stream still decodes to the same encoding.
    assert_eq!(serialize::from_bytes(&bytes).unwrap(), enc);
}
