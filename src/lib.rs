//! # spinfer-suite — umbrella crate for the SpInfer reproduction
//!
//! A from-scratch Rust reproduction of *SpInfer: Leveraging Low-Level
//! Sparsity for Efficient Large Language Model Inference on GPUs*
//! (EuroSys 2025), built on a simulated GPU substrate (see `DESIGN.md`
//! for the hardware-substitution rationale).
//!
//! This crate re-exports the workspace members and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`):
//!
//! * [`gpu_sim`] — warp-level GPU simulator (FP16, Tensor Core fragment
//!   emulation, shared-memory banks, occupancy, timing).
//! * [`core`] (`spinfer-core`) — TCA-BME format, SMBD decoding, and the
//!   SpInfer-SpMM kernel.
//! * [`baselines`] — cuBLAS/Flash-LLM/SparTA/Sputnik/cuSPARSE/SMaT.
//! * [`pruning`] — magnitude/Wanda/SparseGPT-style/2:4 pruners.
//! * [`llm`] — model zoo, memory model, and the end-to-end engine.
//! * [`roofline`] — compression-ratio and compute-intensity analysis.
//!
//! # Quickstart
//!
//! ```
//! use spinfer_suite::core::SpMMHandle;
//! use spinfer_suite::gpu_sim::matrix::{random_dense, random_sparse, ValueDist};
//! use spinfer_suite::gpu_sim::GpuSpec;
//!
//! let weights = random_sparse(256, 256, 0.6, ValueDist::Uniform, 0);
//! let x = random_dense(256, 16, ValueDist::Uniform, 1);
//! let handle = SpMMHandle::encode(&weights);
//! let run = handle.matmul(&GpuSpec::rtx4090(), &x);
//! println!("CR {:.2}, {:.1} us", handle.compression_ratio(), run.time_us());
//! ```

pub use gpu_sim;
pub use spinfer_baselines as baselines;
pub use spinfer_core as core;
pub use spinfer_llm as llm;
pub use spinfer_pruning as pruning;
pub use spinfer_roofline as roofline;
