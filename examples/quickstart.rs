//! Quickstart: encode a sparse weight matrix with TCA-BME, run the
//! SpInfer-SpMM kernel on the simulated RTX4090, check correctness
//! against the dense reference, and compare with the cuBLAS baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use spinfer_suite::baselines::CublasGemm;
use spinfer_suite::core::spmm::SpmmKernel;
use spinfer_suite::core::SpMMHandle;
use spinfer_suite::gpu_sim::matrix::{max_abs_diff, random_dense, random_sparse, ValueDist};
use spinfer_suite::gpu_sim::GpuSpec;

fn main() {
    // A 60%-sparse weight matrix (a decode-phase LLM linear layer in
    // miniature) and a batch-16 activation tile.
    let (m, k, n) = (1024usize, 1024usize, 16usize);
    let sparsity = 0.6;
    let weights = random_sparse(m, k, sparsity, ValueDist::Normal { std: 0.05 }, 7);
    let x = random_dense(k, n, ValueDist::Normal { std: 0.5 }, 8);
    let spec = GpuSpec::rtx4090();

    // Encode into Tensor-Core-Aware Bitmap Encoding.
    let handle = SpMMHandle::encode(&weights);
    println!(
        "TCA-BME encoding of a {m}x{k} matrix at {:.0}% sparsity:",
        sparsity * 100.0
    );
    println!("  dense bytes     : {}", weights.dense_bytes());
    println!("  encoded bytes   : {}", handle.storage_bytes());
    println!(
        "  compression     : {:.2}x (paper Eq. 1)",
        handle.compression_ratio()
    );

    // Run the simulated SpInfer-SpMM kernel (functional: bit-exact).
    let run = handle.matmul(&spec, &x);
    let output = run.output.as_ref().expect("functional run returns output");

    // Validate against the FP32-accumulated dense reference.
    let reference = weights.matmul_ref(&x);
    let err = max_abs_diff(output, &reference);
    println!("\nSpInfer-SpMM on simulated {}:", spec.name);
    println!("  max |err| vs dense reference: {err:.2e}");
    println!("  simulated kernel time       : {:.1} us", run.time_us());
    let launch = &run.chain.launches[0];
    println!(
        "  DRAM traffic                : {:.2} MB",
        launch.timing.dram_bytes as f64 / 1e6
    );
    println!(
        "  bandwidth utilisation       : {:.1}%",
        launch.timing.bw_util * 100.0
    );
    println!(
        "  bank conflicts              : {}",
        launch.counters.smem_bank_conflicts
    );

    // Compare with the dense Tensor-Core GEMM baseline.
    let dense = CublasGemm::new().run(&spec, &weights, &x);
    println!(
        "\ncuBLAS_TC dense baseline      : {:.1} us",
        dense.time_us()
    );
    println!(
        "SpInfer speedup               : {:.2}x",
        dense.time_us() / run.time_us()
    );
    assert!(err < 0.5, "kernel output must match the reference");
}
