//! Deployment planner: given a model, a GPU type, and a latency-free
//! throughput objective, search the (framework, GPU count, batch) space
//! for feasible configurations — the resource-constrained-deployment
//! story of the paper's introduction.
//!
//! Run with: `cargo run --release --example deploy_planner -- [OPT-13B|OPT-30B|OPT-66B]`

use spinfer_suite::gpu_sim::GpuSpec;
use spinfer_suite::llm::{simulate, Framework, InferenceConfig, ModelConfig};

fn main() {
    let model_name = std::env::args().nth(1).unwrap_or_else(|| "OPT-30B".into());
    let model = match model_name.as_str() {
        "OPT-13B" => ModelConfig::opt_13b(),
        "OPT-30B" => ModelConfig::opt_30b(),
        "OPT-66B" => ModelConfig::opt_66b(),
        other => {
            eprintln!("unknown model {other}; use OPT-13B / OPT-30B / OPT-66B");
            std::process::exit(1);
        }
    };

    for spec in [GpuSpec::rtx4090(), GpuSpec::a6000()] {
        println!(
            "=== {} on {} (60% Wanda sparsity, in=64, out=256) ===",
            model.name, spec.name
        );
        let mut best: Option<(f64, String)> = None;
        for fw in Framework::all() {
            for tp in [1usize, 2, 4] {
                for batch in [8usize, 16, 32] {
                    let cfg = InferenceConfig {
                        model,
                        framework: fw,
                        sparsity: 0.6,
                        batch,
                        input_len: 64,
                        output_len: 256,
                        tp,
                    };
                    let r = simulate(&spec, &cfg);
                    if r.oom {
                        continue;
                    }
                    // Throughput per GPU is the deployment-efficiency metric.
                    let per_gpu = r.tokens_per_sec / tp as f64;
                    let desc = format!(
                        "{:>9} tp={tp} bs={batch}: {:>6.0} tok/s total, {:>6.0} tok/s/GPU, {:.1} GiB/GPU",
                        fw.label(),
                        r.tokens_per_sec,
                        per_gpu,
                        r.memory.total_gib()
                    );
                    println!("  {desc}");
                    if best.as_ref().map(|(b, _)| per_gpu > *b).unwrap_or(true) {
                        best = Some((per_gpu, desc));
                    }
                }
            }
        }
        match best {
            Some((_, desc)) => println!("  --> best tokens/s per GPU: {desc}\n"),
            None => println!("  --> no feasible configuration on this GPU type\n"),
        }
    }
}
