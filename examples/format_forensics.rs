//! Format forensics: visualise how TCA-BME lays a matrix out — bitmap
//! occupancy per tile, value-array padding, the per-level storage split,
//! and where every byte of Eq. 9 goes — for a matrix you choose.
//!
//! Run with:
//! `cargo run --release --example format_forensics -- [sparsity]`

use spinfer_suite::core::TcaBme;
use spinfer_suite::gpu_sim::bitops::popc64;
use spinfer_suite::gpu_sim::matrix::{random_sparse, ValueDist};

fn main() {
    let sparsity: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.6);
    let (m, k) = (128usize, 128usize);
    let w = random_sparse(m, k, sparsity, ValueDist::Uniform, 7);
    let enc = TcaBme::encode(&w);

    println!(
        "TCA-BME forensics: {m}x{k} at {:.0}% sparsity (GroupTile {}x{})\n",
        sparsity * 100.0,
        enc.config.gt_rows,
        enc.config.gt_cols
    );

    // Where every byte goes (paper Eq. 9 terms).
    let off_bytes = 4 * enc.gtile_offsets.len();
    let bm_bytes = 8 * enc.bitmaps.len();
    let val_bytes = 2 * enc.values.len();
    let pad_vals = enc.values.len() - enc.nnz;
    let total = enc.storage_bytes();
    println!("storage split (dense would be {} B):", 2 * m * k);
    println!(
        "  GTileOffset : {:>7} B ({:>5.2}%)  [{} x u32]",
        off_bytes,
        100.0 * off_bytes as f64 / total as f64,
        enc.gtile_offsets.len()
    );
    println!(
        "  Bitmap      : {:>7} B ({:>5.2}%)  [{} x u64, one per 8x8 tile]",
        bm_bytes,
        100.0 * bm_bytes as f64 / total as f64,
        enc.bitmaps.len()
    );
    println!(
        "  Values      : {:>7} B ({:>5.2}%)  [{} FP16, {} alignment padding]",
        val_bytes,
        100.0 * val_bytes as f64 / total as f64,
        enc.nnz,
        pad_vals
    );
    println!(
        "  total {} B -> compression {:.3}x\n",
        total,
        enc.compression_ratio()
    );

    // BitmapTile occupancy histogram.
    let mut hist = [0usize; 9]; // Buckets of 8 non-zeros.
    for &bm in &enc.bitmaps {
        hist[(popc64(bm) as usize).div_ceil(8).min(8)] += 1;
    }
    println!("BitmapTile occupancy histogram (non-zeros per 8x8 tile):");
    let max = hist.iter().copied().max().unwrap_or(1).max(1);
    for (i, &count) in hist.iter().enumerate() {
        let label = if i == 0 {
            "   0".to_string()
        } else {
            format!("{:>2}-{:>2}", (i - 1) * 8 + 1, i * 8)
        };
        println!(
            "  {label} | {}{}",
            "#".repeat(count * 48 / max),
            if count > 0 {
                format!(" {count}")
            } else {
                String::new()
            }
        );
    }

    // ASCII map of one GroupTile's first TCTile: x = non-zero.
    println!("\nfirst 16x16 TCTile pattern (x = non-zero), with its 4");
    println!("quadrant bitmaps in storage order TL, BL, TR, BR:");
    for r in 0..16 {
        let row: String = (0..16)
            .map(|c| if w.get(r, c).is_zero() { '.' } else { 'x' })
            .collect();
        println!("  {row}");
    }
    for (q, name) in ["TL(Ra0)", "BL(Ra1)", "TR(Ra2)", "BR(Ra3)"]
        .iter()
        .enumerate()
    {
        println!(
            "  {name}: {:#018x} (popc {})",
            enc.bitmaps[q],
            popc64(enc.bitmaps[q])
        );
    }
    println!(
        "\nThe quadrant order is the mma.m16n8k16 register order — the\n\
         reason SMBD can decode straight into Ra0..Ra3 (paper Fig. 8)."
    );
}
