//! The full SpInfer pipeline on one layer: prune dense weights with
//! Wanda, check the accuracy proxy, encode with TCA-BME, benchmark the
//! kernel roster, then project end-to-end OPT-13B serving throughput.
//!
//! Run with: `cargo run --release --example prune_and_serve`

use spinfer_suite::baselines::kernels::{CublasGemm, FlashLlmSpmm, FlashLlmStats};
use spinfer_suite::core::spmm::SpmmKernel;
use spinfer_suite::core::SpMMHandle;
use spinfer_suite::gpu_sim::matrix::{random_dense, ValueDist};
use spinfer_suite::gpu_sim::GpuSpec;
use spinfer_suite::llm::{simulate, Framework, InferenceConfig, ModelConfig};
use spinfer_suite::pruning::{
    magnitude_prune, pseudo_perplexity, reconstruction_error, wanda_prune, Calibration,
};

fn main() {
    let spec = GpuSpec::rtx4090();
    let (m, k, n) = (2048usize, 1024usize, 16usize);
    let sparsity = 0.6;

    // 1. Prune a synthetic layer with Wanda vs magnitude.
    let dense = random_dense(m, k, ValueDist::Normal { std: 0.04 }, 11);
    let calib = Calibration::synthetic(k, 128, 12);
    let wanda = wanda_prune(&dense, &calib, sparsity);
    let magnitude = magnitude_prune(&dense, sparsity);
    let err_w = reconstruction_error(&dense, &wanda, &calib);
    let err_m = reconstruction_error(&dense, &magnitude, &calib);
    println!(
        "Pruning a {m}x{k} layer to {:.0}% sparsity:",
        sparsity * 100.0
    );
    println!(
        "  Wanda     reconstruction error: {err_w:.4}  (pseudo-ppl {:.1})",
        pseudo_perplexity(err_w)
    );
    println!(
        "  magnitude reconstruction error: {err_m:.4}  (pseudo-ppl {:.1})",
        pseudo_perplexity(err_m)
    );

    // 2. Encode the Wanda-pruned weights and benchmark the kernels.
    let handle = SpMMHandle::encode(&wanda);
    let x = random_dense(k, n, ValueDist::Normal { std: 0.5 }, 13);
    let spinfer = handle.matmul(&spec, &x);
    let cublas = CublasGemm::new().run(&spec, &wanda, &x);
    let flash = FlashLlmSpmm::new().run(&spec, &wanda, &x);
    println!(
        "\nKernel comparison on the pruned layer ({}x{} x {}x{}):",
        m, k, k, n
    );
    println!(
        "  SpInfer-SpMM : {:>8.1} us  (CR {:.2})",
        spinfer.time_us(),
        handle.compression_ratio()
    );
    println!("  Flash-LLM    : {:>8.1} us", flash.time_us());
    println!("  cuBLAS_TC    : {:>8.1} us", cublas.time_us());

    // 3. Project end-to-end OPT-13B serving at this sparsity.
    println!(
        "\nEnd-to-end OPT-13B on 1x{} (BS=16, in=64, out=256):",
        spec.name
    );
    for fw in Framework::all() {
        let cfg = InferenceConfig {
            model: ModelConfig::opt_13b(),
            framework: fw,
            sparsity,
            batch: 16,
            input_len: 64,
            output_len: 256,
            tp: 1,
        };
        let r = simulate(&spec, &cfg);
        if r.oom {
            println!(
                "  {:>9}: OOM ({:.1} GiB needed, 24 GiB available)",
                fw.label(),
                r.memory.total_gib()
            );
        } else {
            println!(
                "  {:>9}: {:>6.0} tokens/s, {:.1} GiB, linear share {:.0}%",
                fw.label(),
                r.tokens_per_sec,
                r.memory.total_gib(),
                r.breakdown.linear_fraction() * 100.0
            );
        }
    }
    let _ = FlashLlmStats::synthetic(m, k, sparsity); // (see fig10 for sweeps)
}
