//! End-to-end *functional* inference: a miniature transformer whose
//! linear layers run through the simulated SpInfer-SpMM and dense GEMM
//! kernels — real logits, real KV cache, real greedy decoding, plus the
//! simulated device time each path would take.
//!
//! Run with: `cargo run --release --example functional_llm`

use spinfer_suite::gpu_sim::GpuSpec;
use spinfer_suite::llm::model::{tiny_config, Generator, ModelRef, TransformerWeights};

fn main() {
    let mut cfg = tiny_config();
    cfg.layers = 4;
    cfg.hidden = 128;
    cfg.heads = 8;
    cfg.kv_heads = 8;
    cfg.ffn_hidden = 512;
    let spec = GpuSpec::rtx4090();
    println!(
        "functional transformer: {} layers, h={}, vocab={}",
        cfg.layers, cfg.hidden, cfg.vocab
    );

    let dense = TransformerWeights::random(cfg, 2025);
    let prompt = [3usize, 14, 15, 9, 26];
    let new_tokens = 16;

    // Dense serving (FasterTransformer-style).
    let mut gen_d = Generator::new(ModelRef::Dense(&dense), spec.clone(), 64);
    let out_d = gen_d.generate(&prompt, new_tokens);
    println!("\ndense (cuBLAS_TC path):");
    println!("  tokens         : {out_d:?}");
    println!(
        "  simulated time : {:.1} us across {} kernel launches",
        gen_d.telemetry.linear_sec * 1e6,
        gen_d.telemetry.launches
    );

    // Pruned + encoded serving (SpInfer path) at three sparsities.
    for sparsity in [0.0, 0.5, 0.7] {
        let sparse = dense.pruned(sparsity, 99);
        let mut gen_s = Generator::new(ModelRef::Sparse(&sparse), spec.clone(), 64);
        let out_s = gen_s.generate(&prompt, new_tokens);
        let agree = out_d.iter().zip(&out_s).take_while(|(a, b)| a == b).count();
        println!("\nSpInfer path at {:.0}% sparsity:", sparsity * 100.0);
        println!("  tokens         : {out_s:?}");
        println!("  agrees with dense for the first {agree}/{new_tokens} tokens");
        println!(
            "  simulated time : {:.1} us, weights {} B (dense {} B)",
            gen_s.telemetry.linear_sec * 1e6,
            sparse.linear_bytes(),
            dense.linear_bytes()
        );
    }
    println!(
        "\nAt 0% sparsity the SpInfer path reproduces the dense tokens \
         exactly (bit-identical kernels); pruning then trades tokens for \
         memory and simulated speed."
    );
}
