//! Kernel explorer: sweep sparsity and batch size for an arbitrary
//! weight shape and print each kernel's simulated time, the roofline
//! classification, and the winner — a what-if tool for the question
//! "would pruning to X% actually speed my layer up?"
//!
//! Run with:
//! `cargo run --release --example kernel_explorer -- <M> <K> [gpu]`
//! e.g. `cargo run --release --example kernel_explorer -- 28672 8192 a6000`

use spinfer_suite::gpu_sim::GpuSpec;
use spinfer_suite::roofline::{attainable_flops, ci_gemm};

// The bench crate is not a dependency of the umbrella crate, so the
// roster is assembled here from the public kernel APIs.
use spinfer_suite::baselines::kernels::{
    CublasGemm, CusparseSpmm, FlashLlmSpmm, FlashLlmStats, SpartaSpmm, SpartaStats, SputnikSpmm,
};
use spinfer_suite::core::{FormatStats, SpinferSpmm};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let m: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(28672);
    let k: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8192);
    let spec = match args.get(3).map(String::as_str) {
        Some("a6000") => GpuSpec::a6000(),
        Some("a100") => GpuSpec::a100_like(),
        _ => GpuSpec::rtx4090(),
    };

    println!("Kernel explorer: W = {m}x{k} on {}", spec.name);
    println!(
        "{:>4} {:>9} | {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} | {:>9} {:>8}",
        "N",
        "sparsity",
        "cuBLAS",
        "SpInfer",
        "Flash-LLM",
        "SparTA",
        "Sputnik",
        "cuSPARSE",
        "winner",
        "regime"
    );
    for n in [8usize, 16, 32, 256, 2048] {
        for s in [0.4, 0.5, 0.6, 0.7] {
            let nnz = ((m * k) as f64 * (1.0 - s)) as usize;
            let times = [
                (
                    "cuBLAS",
                    CublasGemm::new().estimate(&spec, m, k, n).time_us(),
                ),
                (
                    "SpInfer",
                    SpinferSpmm::new()
                        .estimate(&spec, &FormatStats::synthetic(m, k, s), n)
                        .time_us(),
                ),
                (
                    "Flash-LLM",
                    FlashLlmSpmm::new()
                        .estimate(&spec, &FlashLlmStats::synthetic(m, k, s), n)
                        .time_us(),
                ),
                (
                    "SparTA",
                    SpartaSpmm::new()
                        .estimate(&spec, &SpartaStats::synthetic(m, k, s), n)
                        .time_us(),
                ),
                (
                    "Sputnik",
                    SputnikSpmm::new().estimate(&spec, m, k, n, nnz).time_us(),
                ),
                (
                    "cuSPARSE",
                    CusparseSpmm::new().estimate(&spec, m, k, n, nnz).time_us(),
                ),
            ];
            let winner = times
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty roster");
            let regime = if attainable_flops(&spec, ci_gemm(m, n)).memory_bound {
                "memory"
            } else {
                "compute"
            };
            print!("{:>4} {:>8.0}% |", n, s * 100.0);
            for (_, t) in &times {
                print!(" {:>10.1}", t);
            }
            println!(" | {:>9} {:>8}", winner.0, regime);
        }
    }
    println!("\nTimes in microseconds (simulated); winner = fastest kernel.");
}
