#!/usr/bin/env bash
# Regenerates every table and figure of the SpInfer reproduction
# (the artifact-style equivalent of the paper's benchmark.sh).
#
# Usage: scripts/reproduce_all.sh
# Outputs: plain-text tables to stdout, CSVs under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== building (release) =="
cargo build --release -p spinfer-bench

BINS=(fig01 fig02 fig03 fig04 fig10 fig11 fig12 table01 fig13 fig14 fig15 fig16 \
      ablation_design serving_sweep retarget)
mkdir -p results
for b in "${BINS[@]}"; do
    echo
    echo "================================================================"
    echo "== $b"
    echo "================================================================"
    cargo run --quiet --release -p spinfer-bench --bin "$b" | tee "results/$b.txt"
done

echo
echo "== criterion benches (host-side cost of the harness itself) =="
cargo bench --workspace

echo
echo "All outputs written to results/. Paper-vs-measured commentary lives"
echo "in EXPERIMENTS.md; the timing model is specified in docs/TIMING_MODEL.md."
