#!/usr/bin/env bash
# Perf snapshot: build the release CLI and record host wall-clock +
# simulated kernel times for the fig01 hero shape into BENCH_kernels.json.
#
#   scripts/bench_snapshot.sh [--out FILE] [extra `spinfer snapshot` args]
#
# The JSON is the perf trajectory artifact committed at the repo root; CI
# runs this script and prints the result so every PR's wall-clock numbers
# are recorded. Rewriting an existing file appends its previous
# measurement (git rev + wall-clock map) to the `history` array, so the
# whole `wall_clock_s.spinfer_functional_jobs1` trajectory reads straight
# out of BENCH_kernels.json.
#
# The CLI is built with the explicit-SIMD MAC panels (`gpu-sim/simd`) —
# the configuration whose wall-clock the trajectory records; results are
# bit-identical to the scalar build (pinned in tests/simd_equiv.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_kernels.json
if [ "${1:-}" = "--out" ]; then
  OUT="$2"
  shift 2
fi

cargo build --release -p spinfer-bench --bin spinfer --features gpu-sim/simd
./target/release/spinfer snapshot --out "$OUT" "$@"
echo "--- $OUT ---"
cat "$OUT"
